/**
 * @file
 * Golden software references for the MachSuite kernels.
 *
 * Each function performs the same arithmetic, in the same order, as
 * the corresponding Beethoven accelerator core, so test comparisons
 * are exact (including the double-precision MD-KNN force pass).
 */

#ifndef BEETHOVEN_BASELINES_MACHSUITE_GOLDEN_H
#define BEETHOVEN_BASELINES_MACHSUITE_GOLDEN_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace beethoven::machsuite
{

/** C = A x B for n x n int32 matrices (B supplied transposed). */
std::vector<i32> goldenGemm(const std::vector<i32> &a,
                            const std::vector<i32> &bt, unsigned n);

/** Needleman-Wunsch scoring constants (MachSuite's values). */
constexpr i32 nwMatchScore = 1;
constexpr i32 nwMismatchScore = -1;
constexpr i32 nwGapScore = -1;

/**
 * Needleman-Wunsch DP over two n-char sequences.
 * @return the final row of the score matrix (n+1 entries); the last
 *         element is the global alignment score.
 */
std::vector<i32> goldenNw(const std::vector<u8> &seq_a,
                          const std::vector<u8> &seq_b, unsigned n);

/** 3x3 stencil filter coefficients (MachSuite's stencil2d shape). */
extern const i32 stencil2dCoeffs[9];

/**
 * 3x3 stencil over a rows x cols int32 grid; border cells pass
 * through unchanged (MachSuite convention).
 */
std::vector<i32> goldenStencil2d(const std::vector<i32> &in,
                                 unsigned rows, unsigned cols);

/**
 * 7-point stencil over an n^3 int32 volume; boundary cells pass
 * through. out[c] = C0*in[c] + C1*sum(6 neighbors).
 */
constexpr i32 stencil3dC0 = 2;
constexpr i32 stencil3dC1 = 1;
std::vector<i32> goldenStencil3d(const std::vector<i32> &in, unsigned n);

/**
 * MD-KNN Lennard-Jones force pass (MachSuite md/knn): for each atom,
 * accumulate forces from its K listed neighbors.
 *
 * @param pos        3*n doubles (x,y,z per atom)
 * @param neighbors  n*k neighbor indices
 * @return           3*n force components
 */
std::vector<double> goldenMdKnn(const std::vector<double> &pos,
                                const std::vector<i32> &neighbors,
                                unsigned n, unsigned k);

} // namespace beethoven::machsuite

#endif // BEETHOVEN_BASELINES_MACHSUITE_GOLDEN_H
