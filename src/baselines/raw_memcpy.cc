#include "baselines/raw_memcpy.h"

#include <algorithm>

#include "base/bits.h"
#include "base/log.h"

namespace beethoven
{

RawAxiMemcpy::RawAxiMemcpy(Simulator &sim, std::string name,
                           const Params &params, DramController &ctrl)
    : Module(sim, std::move(name)),
      _params(params),
      _ctrl(ctrl),
      _busBytes(ctrl.config().axi.dataBytes)
{}

void
RawAxiMemcpy::start(Addr src, Addr dst, u64 len_bytes)
{
    beethoven_assert(!_active, "start() while a copy is active");
    beethoven_assert(len_bytes % _busBytes == 0 &&
                         src % _busBytes == 0 && dst % _busBytes == 0,
                     "raw memcpy requires bus-beat alignment");
    _src = src;
    _dst = dst;
    _len = len_bytes;
    _active = len_bytes > 0;
    _readIssuedBytes = 0;
    _readReceivedPrefix = 0;
    _writeIssuedBytes = 0;
    _writeAckedBytes = 0;
    _buffer.assign(len_bytes, 0);
    _beatReceived.assign(len_bytes / _busBytes, false);
    _reads.clear();
    _writeBytes.clear();
    _wOpen = false;
}

bool
RawAxiMemcpy::done() const
{
    return !_active;
}

void
RawAxiMemcpy::tick()
{
    if (!_active)
        return;
    issueReads();
    receiveReadData();
    issueWrites();
    receiveWriteResponses();
    if (_writeAckedBytes == _len)
        _active = false;
}

void
RawAxiMemcpy::issueReads()
{
    if (_readIssuedBytes >= _len ||
        _reads.size() >= _params.maxInflightReads ||
        !_ctrl.arPort().canPush()) {
        return;
    }
    const u64 burst_bytes = u64(_params.burstBeats) * _busBytes;
    const u64 bytes = std::min<u64>(burst_bytes, _len - _readIssuedBytes);
    ReadRequest req;
    req.id = _params.readIdBase +
             (_params.distinctIds
                  ? static_cast<u32>(_txnSeqRead %
                                     _params.maxInflightReads)
                  : 0);
    req.addr = _src + _readIssuedBytes;
    req.beats = static_cast<u32>(divCeil(bytes, _busBytes));
    req.tag = nextGlobalTag();
    _ctrl.arPort().push(req);
    _reads.emplace(req.tag, ReadTxn{_readIssuedBytes, 0, bytes});
    _readIssuedBytes += bytes;
    ++_txnSeqRead;
}

void
RawAxiMemcpy::receiveReadData()
{
    if (!_ctrl.rPort().canPop())
        return;
    ReadBeat beat = _ctrl.rPort().pop();
    auto it = _reads.find(beat.tag);
    beethoven_assert(it != _reads.end(), "R beat for unknown tag");
    ReadTxn &txn = it->second;
    const u64 dst_off = txn.offset + txn.received;
    const u64 n = std::min<u64>(beat.data.size(), txn.bytes - txn.received);
    std::copy_n(beat.data.begin(), n, _buffer.begin() + dst_off);
    txn.received += n;
    // Mark the beat and advance the contiguous prefix available to the
    // write side.
    _beatReceived[dst_off / _busBytes] = true;
    while (_readReceivedPrefix < _len &&
           _beatReceived[_readReceivedPrefix / _busBytes]) {
        _readReceivedPrefix += _busBytes;
    }
    if (beat.last) {
        beethoven_assert(txn.received == txn.bytes,
                         "short read burst: %llu of %llu bytes",
                         static_cast<unsigned long long>(txn.received),
                         static_cast<unsigned long long>(txn.bytes));
        _reads.erase(it);
    }
}

void
RawAxiMemcpy::issueWrites()
{
    // Stream the open burst first.
    if (_wOpen && _ctrl.wPort().canPush()) {
        WriteFlit flit;
        if (!_wHeaderSent) {
            flit.hasHeader = true;
            flit.header = _wHeader;
            _wHeaderSent = true;
        }
        flit.beat.data.assign(_buffer.begin() + _wOffset,
                              _buffer.begin() + _wOffset + _busBytes);
        _wOffset += _busBytes;
        --_wBeatsLeft;
        flit.beat.last = _wBeatsLeft == 0;
        _ctrl.wPort().push(std::move(flit));
        if (_wBeatsLeft == 0)
            _wOpen = false;
        return;
    }
    if (_wOpen)
        return;
    if (_writeIssuedBytes >= _len ||
        _writeBytes.size() >= _params.maxInflightWrites) {
        return;
    }
    const u64 burst_bytes = u64(_params.burstBeats) * _busBytes;
    const u64 bytes =
        std::min<u64>(burst_bytes, _len - _writeIssuedBytes);
    // Only write data that has been read (contiguous prefix).
    if (_readReceivedPrefix < _writeIssuedBytes + bytes)
        return;
    _wHeader.id = _params.writeIdBase +
                  (_params.distinctIds
                       ? static_cast<u32>(_txnSeqWrite %
                                          _params.maxInflightWrites)
                       : 0);
    _wHeader.addr = _dst + _writeIssuedBytes;
    _wHeader.beats = static_cast<u32>(divCeil(bytes, _busBytes));
    _wHeader.tag = nextGlobalTag();
    _wOffset = _writeIssuedBytes;
    _wBeatsLeft = _wHeader.beats;
    _wHeaderSent = false;
    _wOpen = true;
    _writeBytes.emplace(_wHeader.tag, bytes);
    _writeIssuedBytes += bytes;
    ++_txnSeqWrite;
}

void
RawAxiMemcpy::receiveWriteResponses()
{
    if (!_ctrl.bPort().canPop())
        return;
    const WriteResponse resp = _ctrl.bPort().pop();
    auto it = _writeBytes.find(resp.tag);
    beethoven_assert(it != _writeBytes.end(), "B for unknown tag");
    _writeAckedBytes += it->second;
    _writeBytes.erase(it);
}

} // namespace beethoven
