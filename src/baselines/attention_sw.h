/**
 * @file
 * Software attention references for the A3 case study (Table III).
 *
 * - goldenAttention: the exact fixed-point computation the A3Core
 *   performs (same exp LUT, same rounding), used for correctness.
 * - softwareAttentionF32 / measureCpuAttention: the FP32 CPU baseline,
 *   actually executed and timed on the build host (the paper used a
 *   12-core i7-12700K; DESIGN.md documents the substitution).
 */

#ifndef BEETHOVEN_BASELINES_ATTENTION_SW_H
#define BEETHOVEN_BASELINES_ATTENTION_SW_H

#include <vector>

#include "base/types.h"

namespace beethoven::a3
{

/**
 * Bit-exact reference of A3Core's pipeline for one query.
 *
 * @param keys    n_keys x dim int8 key matrix (row-major)
 * @param values  n_keys x dim int8 value matrix
 * @param query   dim int8 query vector
 * @return        dim int8 attention output
 */
std::vector<i8> goldenAttention(const std::vector<i8> &keys,
                                const std::vector<i8> &values,
                                const std::vector<i8> &query,
                                unsigned n_keys, unsigned dim);

/** Exact FP32 softmax attention for one query (CPU baseline math). */
void softwareAttentionF32(const float *query, const float *keys,
                          const float *values, float *out,
                          unsigned n_keys, unsigned dim);

/**
 * Measure single-thread FP32 attention throughput on this host.
 * @return operations (queries) per second
 */
double measureCpuAttentionOpsPerSecond(unsigned n_keys, unsigned dim,
                                       double min_seconds = 0.25);

} // namespace beethoven::a3

#endif // BEETHOVEN_BASELINES_ATTENTION_SW_H
