#include "baselines/toolflow_models.h"

#include "base/log.h"

namespace beethoven::baselines
{

ToolflowPoint
vitisHlsModel(const std::string &kernel, unsigned n, unsigned k)
{
    ToolflowPoint p;
    p.tool = "VitisHLS";
    p.kernel = kernel;
    const double dn = n;
    if (kernel == "GeMM") {
        // Inner loop UNROLL=8 at II=1; larger factors congested.
        p.cyclesPerOp = dn * dn * dn / 8.0 + dn * dn / 16.0;
        p.clockMHz = 241;
        p.notes = "inner UNROLL=8, II=1; array_partition cyclic(8)";
    } else if (kernel == "NW") {
        // The cell max-chain is a loop-carried dependence; the
        // scheduler settles at II=3.
        p.cyclesPerOp = 3.0 * dn * dn;
        p.clockMHz = 189;
        p.notes = "II=3 (loop-carried max chain), no useful unroll";
    } else if (kernel == "Stencil2D") {
        // Line-buffered window: the classic HLS success case.
        p.cyclesPerOp = dn * dn + 2 * dn;
        p.clockMHz = 220;
        p.notes = "line-buffered 3x3 window, II=1";
    } else if (kernel == "Stencil3D") {
        p.cyclesPerOp = dn * dn * dn + 2 * dn * dn;
        p.clockMHz = 214;
        p.notes = "plane-buffered 7-point window, II=1";
    } else if (kernel == "MD-KNN") {
        // Double-precision force accumulation is loop-carried; II
        // equals the dadd chain latency.
        p.cyclesPerOp = double(n) * k * 10.0;
        p.clockMHz = 300;
        p.notes = "II=10 (dp accumulation chain); UNROLL rejected";
    } else {
        fatal("no Vitis HLS model for kernel '%s'", kernel.c_str());
    }
    return p;
}

ToolflowPoint
spatialModel(const std::string &kernel, unsigned n, unsigned k)
{
    ToolflowPoint p;
    p.tool = "Spatial";
    p.kernel = kernel;
    const double dn = n;
    // Spatial designs are clocked at the default 125 MHz
    // (Section III-B) and the DSE's aggressive points failed routing,
    // so achieved parallelism trails the pragma maximum.
    p.clockMHz = 125;
    if (kernel == "GeMM") {
        p.cyclesPerOp = dn * dn * dn / 8.0 + dn * dn / 16.0;
        p.notes = "par(16) with II=2 after retiming (DSE point "
                  "par(32) failed routing)";
    } else if (kernel == "NW") {
        p.cyclesPerOp = 2.0 * dn * dn;
        p.notes = "II=2 on the cell chain";
    } else if (kernel == "Stencil2D") {
        p.cyclesPerOp = dn * dn + 2 * dn;
        p.notes = "line-buffered window, II=1";
    } else if (kernel == "Stencil3D") {
        p.cyclesPerOp = dn * dn * dn + 2 * dn * dn;
        p.notes = "plane-buffered window, II=1";
    } else if (kernel == "MD-KNN") {
        p.cyclesPerOp = double(n) * k * 6.0;
        p.notes = "II=6 accumulation chain (reduced-precision "
                  "reassociation rejected)";
    } else {
        fatal("no Spatial model for kernel '%s'", kernel.c_str());
    }
    return p;
}

} // namespace beethoven::baselines
