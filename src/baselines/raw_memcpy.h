/**
 * @file
 * The Fig. 4/5 comparison kernels: memcpy engines that drive the DRAM
 * controller's AXI port directly, reproducing the memory-access
 * patterns the paper attributes to each methodology.
 *
 *  - Pure-HDL (Section III-A): "overlaps read and write transactions
 *    but only uses a single AXI ID and emits one transaction per ID
 *    concurrently", with 64-beat bursts.
 *  - Vitis HLS: "although our HLS implementation is annotated to use
 *    64-beat bursts, the compiled output only used 16-beat bursts" and
 *    "emits all its transactions on the same AXI ID" — several
 *    concurrent transactions, one ordering stream.
 *
 * Both are expressed by one parameterized engine so the experiment is
 * a config sweep, mirroring how the Beethoven variant is a config
 * sweep of MemcpyCore.
 */

#ifndef BEETHOVEN_BASELINES_RAW_MEMCPY_H
#define BEETHOVEN_BASELINES_RAW_MEMCPY_H

#include <deque>
#include <map>
#include <vector>

#include "axi/axi_types.h"
#include "dram/controller.h"
#include "sim/module.h"
#include "sim/queue.h"

namespace beethoven
{

class RawAxiMemcpy : public Module
{
  public:
    struct Params
    {
        unsigned burstBeats = 64;
        unsigned maxInflightReads = 1;
        unsigned maxInflightWrites = 1;
        bool distinctIds = false; ///< rotate IDs across transactions
        u32 readIdBase = 0;
        u32 writeIdBase = 0;
    };

    RawAxiMemcpy(Simulator &sim, std::string name, const Params &params,
                 DramController &ctrl);

    /** Begin copying len bytes (bus-beat aligned) from src to dst. */
    void start(Addr src, Addr dst, u64 len_bytes);

    bool done() const;

    void tick() override;

  private:
    void issueReads();
    void receiveReadData();
    void issueWrites();
    void receiveWriteResponses();

    Params _params;
    DramController &_ctrl;
    unsigned _busBytes;

    Addr _src = 0;
    Addr _dst = 0;
    u64 _len = 0;
    bool _active = false;

    u64 _readIssuedBytes = 0;
    u64 _readReceivedPrefix = 0; ///< contiguous bytes buffered from 0
    u64 _writeIssuedBytes = 0;
    u64 _writeAckedBytes = 0;
    u64 _txnSeqRead = 0;
    u64 _txnSeqWrite = 0;

    std::vector<u8> _buffer; ///< staging for the whole copy
    /** Outstanding reads: tag -> (start offset, bytes received). */
    struct ReadTxn
    {
        u64 offset;
        u64 received = 0;
        u64 bytes;
    };
    std::map<u64, ReadTxn> _reads;
    std::map<u64, u64> _writeBytes;  ///< tag -> burst bytes
    std::vector<bool> _beatReceived; ///< per-beat arrival bitmap

    /** Burst currently streaming onto the W channel. */
    bool _wOpen = false;
    WriteRequest _wHeader;
    u64 _wOffset = 0;
    u32 _wBeatsLeft = 0;
    bool _wHeaderSent = false;
};

} // namespace beethoven

#endif // BEETHOVEN_BASELINES_RAW_MEMCPY_H
