/**
 * @file
 * Performance models of the Vitis HLS and Spatial MachSuite baselines
 * (Section III-B).
 *
 * The paper hand-tuned pragmas for both tool flows on a real VU9P; we
 * cannot run the proprietary compilers, so each baseline is a
 * documented analytic model: achieved initiation interval x trip count
 * at the clock the tool closed timing at (DESIGN.md, substitution
 * table). The IIs and clocks encode the well-known behaviours the
 * paper leans on: stencils line-buffer beautifully in HLS (II=1 at a
 * high clock), loop-carried kernels (NW's max chain, MD-KNN's
 * double-precision accumulation) get stuck at II equal to the
 * dependence chain latency, and "the reported optimal design points
 * often did not pass FPGA image synthesis" caps Spatial's unrolling.
 */

#ifndef BEETHOVEN_BASELINES_TOOLFLOW_MODELS_H
#define BEETHOVEN_BASELINES_TOOLFLOW_MODELS_H

#include <string>

#include "base/types.h"

namespace beethoven::baselines
{

struct ToolflowPoint
{
    std::string tool;
    std::string kernel;
    double cyclesPerOp = 1;
    double clockMHz = 250;
    std::string notes;

    double
    opsPerSecond() const
    {
        return clockMHz * 1e6 / cyclesPerOp;
    }
};

/**
 * Vitis HLS model for a Table I kernel.
 * @param kernel one of GeMM | NW | Stencil2D | Stencil3D | MD-KNN
 */
ToolflowPoint vitisHlsModel(const std::string &kernel, unsigned n,
                            unsigned k);

/** Spatial model for a Table I kernel. */
ToolflowPoint spatialModel(const std::string &kernel, unsigned n,
                           unsigned k);

} // namespace beethoven::baselines

#endif // BEETHOVEN_BASELINES_TOOLFLOW_MODELS_H
