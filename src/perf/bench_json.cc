#include "perf/bench_json.h"

#include "base/json.h"
#include "base/log.h"

namespace beethoven
{

const BenchPerfRecord *
BenchSuite::find(const std::string &name) const
{
    for (const BenchPerfRecord &b : benches)
        if (b.name == name)
            return &b;
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

void
writeBenchSuiteJson(std::ostream &os, const BenchSuite &suite)
{
    os << "{\"schema\":\"" << BenchSuite::kSchema << "\",\"label\":\""
       << jsonEscape(suite.label) << "\",\"quick\":"
       << (suite.quick ? "true" : "false") << ",\"runs\":" << suite.runs
       << ",\"benches\":[";
    bool first = true;
    for (const BenchPerfRecord &b : suite.benches) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\":\"" << jsonEscape(b.name)
           << "\",\"wall_ms\":" << b.wallMs
           << ",\"sim_cycles\":" << b.simCycles
           << ",\"cycles_per_sec\":" << b.cyclesPerSec
           << ",\"peak_rss_kb\":" << b.peakRssKb
           << ",\"module_ticks\":" << b.moduleTicks;
        // Optional, so trajectory files from before the power layer
        // (e.g. BENCH_seed.json) stay byte-stable and re-parseable.
        if (b.avgWatts > 0.0)
            os << ",\"avg_watts\":" << b.avgWatts;
        if (b.energyPerOpUj > 0.0)
            os << ",\"energy_per_op_uj\":" << b.energyPerOpUj;
        os << ",\"host_top\":[";
        bool tfirst = true;
        for (const HostTopEntry &t : b.hostTop) {
            if (!tfirst)
                os << ",";
            tfirst = false;
            os << "{\"component\":\"" << jsonEscape(t.component)
               << "\",\"ns\":" << t.ns << ",\"share\":" << t.share
               << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
}

namespace
{

double
requireNumber(const JsonValue &obj, const char *key, const char *where)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        fatal("BENCH json: missing or non-numeric \"%s\" in %s", key,
              where);
    return v->number;
}

std::string
requireString(const JsonValue &obj, const char *key, const char *where)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isString())
        fatal("BENCH json: missing or non-string \"%s\" in %s", key,
              where);
    return v->string;
}

} // namespace

BenchSuite
parseBenchSuite(const JsonValue &v)
{
    if (!v.isObject())
        fatal("BENCH json: top level is not an object");
    const JsonValue *schema = v.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != BenchSuite::kSchema)
        fatal("BENCH json: missing or unsupported schema marker "
              "(expected \"%s\")",
              BenchSuite::kSchema);

    BenchSuite suite;
    suite.label = requireString(v, "label", "suite");
    if (const JsonValue *q = v.find("quick"); q != nullptr && q->isBool())
        suite.quick = q->boolean;
    if (const JsonValue *r = v.find("runs"); r != nullptr && r->isNumber())
        suite.runs = static_cast<unsigned>(r->number);

    const JsonValue *benches = v.find("benches");
    if (benches == nullptr || !benches->isArray())
        fatal("BENCH json: missing \"benches\" array");
    for (const JsonValue &b : benches->array) {
        if (!b.isObject())
            fatal("BENCH json: bench entry is not an object");
        BenchPerfRecord rec;
        rec.name = requireString(b, "name", "bench entry");
        const char *where = rec.name.c_str();
        rec.wallMs = requireNumber(b, "wall_ms", where);
        rec.simCycles =
            static_cast<u64>(requireNumber(b, "sim_cycles", where));
        rec.cyclesPerSec = requireNumber(b, "cycles_per_sec", where);
        rec.peakRssKb =
            static_cast<u64>(requireNumber(b, "peak_rss_kb", where));
        if (const JsonValue *t = b.find("module_ticks");
            t != nullptr && t->isNumber())
            rec.moduleTicks = static_cast<u64>(t->number);
        if (const JsonValue *w = b.find("avg_watts");
            w != nullptr && w->isNumber())
            rec.avgWatts = w->number;
        if (const JsonValue *e = b.find("energy_per_op_uj");
            e != nullptr && e->isNumber())
            rec.energyPerOpUj = e->number;
        if (const JsonValue *ht = b.find("host_top");
            ht != nullptr && ht->isArray()) {
            for (const JsonValue &t : ht->array) {
                if (!t.isObject())
                    continue;
                HostTopEntry e;
                e.component = requireString(t, "component", where);
                e.ns = static_cast<u64>(requireNumber(t, "ns", where));
                if (const JsonValue *s = t.find("share");
                    s != nullptr && s->isNumber())
                    e.share = s->number;
                rec.hostTop.push_back(std::move(e));
            }
        }
        suite.benches.push_back(std::move(rec));
    }
    return suite;
}

} // namespace beethoven
