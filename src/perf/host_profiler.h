/**
 * @file
 * Host-time attribution for the simulator's own hot path.
 *
 * The existing observability stack (src/trace/) explains where
 * *simulated* cycles go; the HostProfiler explains where *wall-clock*
 * goes while the simulator produces those cycles — the breakdown the
 * ROADMAP's cycles-per-second KPI work needs before the step loop can
 * be made event-driven or sharded.
 *
 * Attach a profiler to a Simulator (Simulator::attachHostProfiler) and
 * every step is accounted against named components: one component per
 * registered module, plus a builtin "(commit)" bucket for the
 * end-of-cycle commit phase. Attribution happens with a chain of
 * monotonic clock reads (one per module per measured cycle), so
 * per-component times are disjoint sub-intervals of the measured
 * step-loop total and always sum to <= it.
 *
 * Three modes bound the overhead:
 *
 *   KpiOnly   no per-component timing; only the cycles/sec heartbeat
 *             runs (one clock read every heartbeat window). This is
 *             what --perf-json alone enables.
 *   Sampling  every Nth cycle is fully timed (default N=64); measured
 *             shares estimate the true breakdown with ~1/N of the
 *             scoped cost. The default for --host-profile, keeping
 *             overhead well under the 5% budget (DESIGN.md 4e).
 *   Scoped    every cycle is timed. Exact, costliest; used by the
 *             conservation tests and short diagnostic runs.
 *
 * A profiler may be attached to many Simulators sequentially (benches
 * construct one SoC per configuration); components with equal names
 * accumulate across attachments, so "ddr" means all DRAM controllers
 * the process ticked.
 *
 * The profiler never mutates simulation state; tests/perf_test.cc
 * proves a profiled run's stats digest is bit-identical to an
 * unprofiled one.
 */

#ifndef BEETHOVEN_PERF_HOST_PROFILER_H
#define BEETHOVEN_PERF_HOST_PROFILER_H

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven
{

class TraceSink;

class HostProfiler
{
  public:
    enum class Mode { KpiOnly, Sampling, Scoped };

    /**
     * @param period     cycles between measured cycles (Sampling mode;
     *                   clamped to >= 1, ignored otherwise)
     * @param hb_period  cycles between heartbeat samples (rounded up
     *                   to a power of two)
     */
    explicit HostProfiler(Mode mode = Mode::Sampling, u32 period = 64,
                          Cycle hb_period = 1ull << 12);

    Mode mode() const { return _mode; }
    u32 period() const { return _period; }
    const char *modeName() const;

    /** Get-or-create the component named @p name. */
    u32 componentId(const std::string &name);

    /** Builtin bucket for the commit phase. */
    u32 commitComponentId() const { return _commitId; }

    // ---- hot path (called by Simulator::step) ----------------------

    /**
     * Account one elapsed cycle: advances the heartbeat and decides
     * whether this cycle's phases should be individually timed.
     * @return true if the caller should time this cycle.
     */
    bool onCycle();

    /** Attribute @p ns of host time to component @p id. */
    void add(u32 id, u64 ns)
    {
        _components[id].ns += ns;
        ++_components[id].calls;
    }

    /** Account @p ns of measured step-loop time (all components). */
    void addTotal(u64 ns)
    {
        _totalNs += ns;
        ++_sampledCycles;
    }

    /**
     * Every kTraceEmitSamples measured cycles, emit one counter sample
     * per active component into @p sink (category "host", tracks named
     * "host/<component>", value = microseconds spent since the last
     * emission). Lets Perfetto line host-time up under the simulated
     * timeline.
     */
    void emitCountersMaybe(TraceSink &sink, Cycle cycle);

    // ---- results ---------------------------------------------------

    struct Component
    {
        std::string name;
        u64 ns = 0;    ///< host time attributed (measured cycles only)
        u64 calls = 0; ///< number of measured intervals
    };

    /** Total measured step-loop time (ns) across sampled cycles. */
    u64 totalNs() const { return _totalNs; }

    /** Cycles that were individually timed. */
    u64 sampledCycles() const { return _sampledCycles; }

    /** Cycles seen (measured or not) across all attached simulators. */
    u64 seenCycles() const { return _cycles; }

    /** All components in registration order. */
    const std::vector<Component> &components() const
    {
        return _components;
    }

    /** The @p n components with the most attributed time, descending. */
    std::vector<Component> top(std::size_t n) const;

    /** Fraction of measured step-loop time in component @p c. */
    double share(const Component &c) const
    {
        return _totalNs ? static_cast<double>(c.ns) / _totalNs : 0.0;
    }

    /**
     * One cumulative cycles/sec heartbeat sample: @p cycles cycles had
     * been stepped @p wallNs after profiler construction. The series
     * is windowed: when it outgrows kMaxHeartbeatPoints the window
     * doubles and every other point is dropped, so memory stays
     * bounded on arbitrarily long runs.
     */
    struct HeartbeatPoint
    {
        u64 cycles = 0;
        u64 wallNs = 0;
    };

    const std::vector<HeartbeatPoint> &heartbeat() const
    {
        return _heartbeat;
    }

    Cycle heartbeatPeriod() const { return _hbMask + 1; }

    /** Ranked per-component table, analogous to the stall report. */
    void writeReport(std::ostream &os, std::size_t top_n = 10) const;

    /** The "host_profile" JSON object embedded in --perf-json output. */
    void writeJson(std::ostream &os) const;

    static constexpr std::size_t kMaxHeartbeatPoints = 512;
    static constexpr u64 kTraceEmitSamples = 64;

  private:
    Mode _mode;
    u32 _period;
    u32 _sinceSample = 0;
    Cycle _hbMask;
    u64 _cycles = 0;
    u64 _sampledCycles = 0;
    u64 _totalNs = 0;
    u64 _startNs;
    u64 _samplesSinceEmit = 0;
    u32 _commitId = 0;
    std::vector<Component> _components;
    std::map<std::string, u32> _byName;
    std::vector<u64> _emittedNs; ///< per-component ns at last emission
    std::vector<HeartbeatPoint> _heartbeat;
};

} // namespace beethoven

#endif // BEETHOVEN_PERF_HOST_PROFILER_H
