/**
 * @file
 * The monotonic host clock used by the host-performance layer.
 *
 * All host-time observability (src/perf/) reads wall-clock through
 * this one function so the clock source can be swapped in one place.
 * CLOCK_MONOTONIC via clock_gettime costs ~20 ns on Linux (vDSO, no
 * syscall); platforms without POSIX clocks fall back to
 * std::chrono::steady_clock, which is typically the same clock with
 * slightly more call overhead.
 *
 * Host time never feeds back into simulation: simulated behaviour is
 * derived exclusively from seeds and cycle counts (the determinism
 * guard in tests/perf_test.cc pins this), so everything in src/perf/
 * is observability-only by construction.
 */

#ifndef BEETHOVEN_PERF_HOST_CLOCK_H
#define BEETHOVEN_PERF_HOST_CLOCK_H

#include <chrono>
#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define BEETHOVEN_HAVE_POSIX_CLOCK 1
#endif

#include "base/types.h"

namespace beethoven
{

/** Nanoseconds on a monotonic clock with an arbitrary epoch. */
inline u64
hostNowNs()
{
#ifdef BEETHOVEN_HAVE_POSIX_CLOCK
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<u64>(ts.tv_nsec);
#else
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

} // namespace beethoven

#endif // BEETHOVEN_PERF_HOST_CLOCK_H
