/**
 * @file
 * Global operator new/delete overrides that count allocation churn
 * for the KPI layer (allocCounters() in perf/kpi.h).
 *
 * The counters are relaxed atomics: exact totals matter, ordering
 * does not, and the ~1 ns increment keeps the overrides out of any
 * profile. Every override forwards to malloc/free, so sanitizer
 * interposition (ASan tracks the malloc layer) keeps working.
 *
 * This translation unit defines the replaceable global allocation
 * functions, so the static-archive rule applies: a binary picks the
 * overrides up only if it references something else in this TU —
 * which is exactly allocCounters(). Binaries that never read the
 * counters keep the default allocator entry points.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include "perf/kpi.h"

namespace
{

std::atomic<beethoven::u64> g_allocs{0};
std::atomic<beethoven::u64> g_frees{0};
std::atomic<beethoven::u64> g_bytes{0};

void *
countedAlloc(std::size_t n)
{
    void *p = std::malloc(n != 0 ? n : 1);
    if (p != nullptr) {
        g_allocs.fetch_add(1, std::memory_order_relaxed);
        g_bytes.fetch_add(n, std::memory_order_relaxed);
    }
    return p;
}

void *
countedAlignedAlloc(std::size_t n, std::size_t align)
{
    void *p = nullptr;
    if (align < sizeof(void *))
        align = sizeof(void *);
    if (posix_memalign(&p, align, n != 0 ? n : 1) != 0)
        return nullptr;
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(n, std::memory_order_relaxed);
    return p;
}

void
countedFree(void *p)
{
    if (p != nullptr) {
        g_frees.fetch_add(1, std::memory_order_relaxed);
        std::free(p);
    }
}

} // namespace

namespace beethoven
{

AllocCounters
allocCounters()
{
    return AllocCounters{g_allocs.load(std::memory_order_relaxed),
                         g_frees.load(std::memory_order_relaxed),
                         g_bytes.load(std::memory_order_relaxed)};
}

} // namespace beethoven

void *
operator new(std::size_t n)
{
    if (void *p = countedAlloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    if (void *p = countedAlloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    if (void *p =
            countedAlignedAlloc(n, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    if (void *p =
            countedAlignedAlloc(n, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t n, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}
