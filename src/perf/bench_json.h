/**
 * @file
 * The BENCH_<label>.json perf-trajectory schema.
 *
 * One file records one measured commit: for every bench in the suite,
 * the median-of-N wall time, simulated cycle count, cycles/sec, peak
 * RSS, and the top host-time components from a profiled run.
 * tools/soc_perf writes these; tools/perf_compare diffs two of them;
 * committed files live under perf/ (one per measured commit, labeled
 * by the label convention documented in README.md).
 *
 * The writer emits schema "beethoven-bench-1"; the parser accepts
 * exactly that schema and throws ConfigError on anything else, so a
 * regression gate can distinguish "slower" (exit 2) from "not a BENCH
 * file" (exit 3).
 */

#ifndef BEETHOVEN_PERF_BENCH_JSON_H
#define BEETHOVEN_PERF_BENCH_JSON_H

#include <ostream>
#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven
{

struct JsonValue;

/** One host-time component in a bench's top-N breakdown. */
struct HostTopEntry
{
    std::string component;
    u64 ns = 0;
    double share = 0.0;
};

/** Per-bench KPIs, medians across the suite runner's repetitions. */
struct BenchPerfRecord
{
    std::string name;
    double wallMs = 0.0;
    u64 simCycles = 0;
    double cyclesPerSec = 0.0;
    u64 peakRssKb = 0;
    u64 moduleTicks = 0;
    /**
     * Modeled power summary from the bench's --power-json pass
     * (DESIGN.md §4f). Informational: perf_compare never derives a
     * verdict from these. 0 = no power pass ran or the bench recorded
     * no measured runs / no operation count.
     */
    double avgWatts = 0.0;
    double energyPerOpUj = 0.0;
    std::vector<HostTopEntry> hostTop;
};

struct BenchSuite
{
    static constexpr const char *kSchema = "beethoven-bench-1";

    std::string label;
    bool quick = false;
    unsigned runs = 0;
    std::vector<BenchPerfRecord> benches;

    /** Record for @p name, or nullptr. */
    const BenchPerfRecord *find(const std::string &name) const;
};

/** Escape a string for embedding in a JSON literal (no quotes). */
std::string jsonEscape(const std::string &s);

void writeBenchSuiteJson(std::ostream &os, const BenchSuite &suite);

/**
 * Parse a BENCH suite from already-parsed JSON.
 * @throws ConfigError when the schema marker or required per-bench
 *         keys are missing or mistyped.
 */
BenchSuite parseBenchSuite(const JsonValue &v);

} // namespace beethoven

#endif // BEETHOVEN_PERF_BENCH_JSON_H
