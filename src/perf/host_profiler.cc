#include "perf/host_profiler.h"

#include <algorithm>
#include <iomanip>

#include "perf/host_clock.h"
#include "trace/trace.h"

namespace beethoven
{

namespace
{

/** Smallest power-of-two mask covering @p period cycles. */
Cycle
heartbeatMask(Cycle period)
{
    Cycle mask = 1;
    while (mask + 1 < period && mask < (1ull << 62))
        mask = (mask << 1) | 1;
    return mask;
}

} // namespace

HostProfiler::HostProfiler(Mode mode, u32 period, Cycle hb_period)
    : _mode(mode), _period(period == 0 ? 1 : period),
      _hbMask(heartbeatMask(hb_period)), _startNs(hostNowNs())
{
    _commitId = componentId("(commit)");
}

const char *
HostProfiler::modeName() const
{
    switch (_mode) {
    case Mode::KpiOnly:
        return "kpi-only";
    case Mode::Sampling:
        return "sampling";
    case Mode::Scoped:
        return "scoped";
    }
    return "?";
}

u32
HostProfiler::componentId(const std::string &name)
{
    auto it = _byName.find(name);
    if (it != _byName.end())
        return it->second;
    const u32 id = static_cast<u32>(_components.size());
    _components.push_back(Component{name, 0, 0});
    _byName.emplace(name, id);
    return id;
}

bool
HostProfiler::onCycle()
{
    ++_cycles;
    if ((_cycles & _hbMask) == 0) {
        _heartbeat.push_back({_cycles, hostNowNs() - _startNs});
        if (_heartbeat.size() > kMaxHeartbeatPoints) {
            // Double the window: keep every other point so the series
            // still ends at the newest sample.
            std::size_t out = 0;
            for (std::size_t i = 1; i < _heartbeat.size(); i += 2)
                _heartbeat[out++] = _heartbeat[i];
            _heartbeat.resize(out);
            _hbMask = (_hbMask << 1) | 1;
        }
    }
    if (_mode == Mode::KpiOnly)
        return false;
    if (_mode == Mode::Scoped)
        return true;
    if (++_sinceSample >= _period) {
        _sinceSample = 0;
        return true;
    }
    return false;
}

void
HostProfiler::emitCountersMaybe(TraceSink &sink, Cycle cycle)
{
    if (++_samplesSinceEmit < kTraceEmitSamples)
        return;
    _samplesSinceEmit = 0;
    _emittedNs.resize(_components.size(), 0);
    for (std::size_t i = 0; i < _components.size(); ++i) {
        const u64 ns = _components[i].ns;
        if (ns == _emittedNs[i])
            continue;
        sink.counter("host", "host/" + _components[i].name, cycle,
                     static_cast<double>(ns - _emittedNs[i]) / 1000.0);
        _emittedNs[i] = ns;
    }
}

std::vector<HostProfiler::Component>
HostProfiler::top(std::size_t n) const
{
    std::vector<Component> sorted;
    for (const Component &c : _components)
        if (c.calls != 0)
            sorted.push_back(c);
    std::sort(sorted.begin(), sorted.end(),
              [](const Component &a, const Component &b) {
                  return a.ns != b.ns ? a.ns > b.ns : a.name < b.name;
              });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

void
HostProfiler::writeReport(std::ostream &os, std::size_t top_n) const
{
    os << "host-time breakdown (" << modeName() << " mode, "
       << _sampledCycles << " of " << _cycles << " cycles measured, "
       << _totalNs / 1000 << " us step-loop time):\n";
    const auto ranked = top(top_n);
    for (const Component &c : ranked) {
        os << "  " << std::left << std::setw(24) << c.name << std::right
           << std::setw(10) << c.ns / 1000 << " us  " << std::fixed
           << std::setprecision(1) << 100.0 * share(c) << "%\n";
        os.unsetf(std::ios::floatfield);
    }
    if (ranked.empty())
        os << "  (no measured cycles)\n";
}

void
HostProfiler::writeJson(std::ostream &os) const
{
    os << "{\"mode\":\"" << modeName() << "\",\"period\":" << _period
       << ",\"seen_cycles\":" << _cycles
       << ",\"sampled_cycles\":" << _sampledCycles
       << ",\"total_ns\":" << _totalNs << ",\"components\":[";
    bool first = true;
    for (const Component &c : top(_components.size())) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << c.name << "\",\"ns\":" << c.ns
           << ",\"calls\":" << c.calls << ",\"share\":" << share(c)
           << "}";
    }
    os << "]}";
}

} // namespace beethoven
