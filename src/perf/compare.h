/**
 * @file
 * The perf-regression verdict: diff two BENCH suites with a relative
 * tolerance. Kept out of the CLI so the verdict rules are unit-tested
 * directly (tests/perf_test.cc) and the tool is a thin shell.
 */

#ifndef BEETHOVEN_PERF_COMPARE_H
#define BEETHOVEN_PERF_COMPARE_H

#include <ostream>
#include <string>
#include <vector>

#include "perf/bench_json.h"

namespace beethoven
{

struct CompareOptions
{
    /**
     * Allowed relative slowdown before a bench counts as regressed:
     * candidate cycles/sec below baseline * (1 - tolerance) fails.
     * 0.10 = 10%.
     */
    double tolerance = 0.10;

    /**
     * Benches whose baseline wall time is below this floor are never
     * judged on wall time (elaboration-only benches finish in
     * milliseconds, where scheduler noise dwarfs any real signal).
     */
    double wallFloorMs = 100.0;
};

enum class BenchVerdict {
    Ok,        ///< within tolerance (or below the noise floor)
    Regressed, ///< candidate slower than tolerance allows
    Missing,   ///< present in baseline, absent in candidate
    New,       ///< present only in candidate (informational)
};

struct BenchDelta
{
    std::string name;
    double baseCps = 0.0;
    double candCps = 0.0;
    double baseWallMs = 0.0;
    double candWallMs = 0.0;
    /** Relative cycles/sec change, candidate vs baseline (+ = faster). */
    double deltaPct = 0.0;
    /**
     * Modeled power (watts) from each side's record, when present.
     * Informational only — never feeds the verdict, since modeled
     * power legitimately moves with workload and calibration changes.
     */
    double baseWatts = 0.0;
    double candWatts = 0.0;
    BenchVerdict verdict = BenchVerdict::Ok;
    std::string note;
};

struct CompareResult
{
    std::vector<BenchDelta> deltas;

    /** True if any bench regressed or went missing. */
    bool regressed() const;
};

/**
 * Judge @p cand against @p base. Benches that simulate (baseline
 * cycles/sec > 0) are judged on cycles/sec; benches that do not are
 * judged on wall time above the noise floor, and otherwise always
 * pass. A bench present in the baseline but missing from the
 * candidate is a regression (the trajectory lost coverage).
 */
CompareResult compareSuites(const BenchSuite &base,
                            const BenchSuite &cand,
                            const CompareOptions &opt);

/** Human-readable per-bench table with verdicts. */
void writeCompareTable(std::ostream &os, const CompareResult &result,
                       const CompareOptions &opt);

} // namespace beethoven

#endif // BEETHOVEN_PERF_COMPARE_H
