#include "perf/kpi.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define BEETHOVEN_HAVE_GETRUSAGE 1
#endif

#include "perf/host_profiler.h"

namespace beethoven
{

u64
peakRssKb()
{
    // Prefer VmHWM: it is the true high-water mark even after frees.
    if (std::FILE *f = std::fopen("/proc/self/status", "r")) {
        char line[256];
        u64 kb = 0;
        while (std::fgets(line, sizeof line, f) != nullptr) {
            if (std::strncmp(line, "VmHWM:", 6) == 0) {
                unsigned long long v = 0;
                if (std::sscanf(line + 6, "%llu", &v) == 1)
                    kb = v;
                break;
            }
        }
        std::fclose(f);
        if (kb != 0)
            return kb;
    }
#ifdef BEETHOVEN_HAVE_GETRUSAGE
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#ifdef __APPLE__
        return static_cast<u64>(ru.ru_maxrss) / 1024; // bytes on macOS
#else
        return static_cast<u64>(ru.ru_maxrss); // KiB on Linux
#endif
    }
#endif
    return 0;
}

void
writePerfJson(std::ostream &os, const std::string &bench, bool quick,
              u64 wall_ns, u64 cycles, u64 ticks,
              const HostProfiler *prof)
{
    const double wall_ms = static_cast<double>(wall_ns) / 1e6;
    const double secs = static_cast<double>(wall_ns) / 1e9;
    const double cps =
        secs > 0 ? static_cast<double>(cycles) / secs : 0.0;
    const double tps =
        secs > 0 ? static_cast<double>(ticks) / secs : 0.0;
    const AllocCounters alloc = allocCounters();

    os << "{\"schema\":\"beethoven-perf-1\"";
    os << ",\"bench\":\"" << bench << "\"";
    os << ",\"quick\":" << (quick ? "true" : "false");
    os << ",\"wall_ms\":" << wall_ms;
    os << ",\"sim_cycles\":" << cycles;
    os << ",\"module_ticks\":" << ticks;
    os << ",\"cycles_per_sec\":" << cps;
    os << ",\"ticks_per_sec\":" << tps;
    os << ",\"peak_rss_kb\":" << peakRssKb();
    os << ",\"alloc\":{\"allocs\":" << alloc.allocs
       << ",\"frees\":" << alloc.frees << ",\"bytes\":" << alloc.bytes
       << "}";
    if (prof != nullptr) {
        os << ",\"heartbeat\":[";
        bool first = true;
        for (const auto &p : prof->heartbeat()) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"cycles\":" << p.cycles << ",\"wall_ms\":"
               << static_cast<double>(p.wallNs) / 1e6 << "}";
        }
        os << "],\"host_profile\":";
        prof->writeJson(os);
    }
    os << "}\n";
}

} // namespace beethoven
