#include "perf/compare.h"

#include <iomanip>

namespace beethoven
{

namespace
{

const char *
verdictName(BenchVerdict v)
{
    switch (v) {
    case BenchVerdict::Ok:
        return "ok";
    case BenchVerdict::Regressed:
        return "REGRESSED";
    case BenchVerdict::Missing:
        return "MISSING";
    case BenchVerdict::New:
        return "new";
    }
    return "?";
}

} // namespace

bool
CompareResult::regressed() const
{
    for (const BenchDelta &d : deltas)
        if (d.verdict == BenchVerdict::Regressed ||
            d.verdict == BenchVerdict::Missing)
            return true;
    return false;
}

CompareResult
compareSuites(const BenchSuite &base, const BenchSuite &cand,
              const CompareOptions &opt)
{
    CompareResult result;
    for (const BenchPerfRecord &b : base.benches) {
        BenchDelta d;
        d.name = b.name;
        d.baseCps = b.cyclesPerSec;
        d.baseWallMs = b.wallMs;
        const BenchPerfRecord *c = cand.find(b.name);
        if (c == nullptr) {
            d.verdict = BenchVerdict::Missing;
            d.note = "absent from candidate";
            result.deltas.push_back(std::move(d));
            continue;
        }
        d.candCps = c->cyclesPerSec;
        d.candWallMs = c->wallMs;
        d.baseWatts = b.avgWatts;
        d.candWatts = c->avgWatts;
        if (b.cyclesPerSec > 0.0) {
            d.deltaPct =
                100.0 * (c->cyclesPerSec / b.cyclesPerSec - 1.0);
            d.verdict = c->cyclesPerSec <
                                b.cyclesPerSec * (1.0 - opt.tolerance)
                            ? BenchVerdict::Regressed
                            : BenchVerdict::Ok;
        } else if (b.wallMs >= opt.wallFloorMs && b.wallMs > 0.0) {
            // No simulated cycles (elaboration-only bench): judge on
            // wall time, slower-is-worse.
            d.deltaPct = 100.0 * (b.wallMs / c->wallMs - 1.0);
            d.verdict =
                c->wallMs > b.wallMs * (1.0 + opt.tolerance)
                    ? BenchVerdict::Regressed
                    : BenchVerdict::Ok;
            d.note = "wall-time basis";
        } else {
            d.verdict = BenchVerdict::Ok;
            d.note = "below noise floor";
        }
        result.deltas.push_back(std::move(d));
    }
    for (const BenchPerfRecord &c : cand.benches) {
        if (base.find(c.name) != nullptr)
            continue;
        BenchDelta d;
        d.name = c.name;
        d.candCps = c.cyclesPerSec;
        d.candWallMs = c.wallMs;
        d.verdict = BenchVerdict::New;
        d.note = "absent from baseline";
        result.deltas.push_back(std::move(d));
    }
    return result;
}

void
writeCompareTable(std::ostream &os, const CompareResult &result,
                  const CompareOptions &opt)
{
    os << std::left << std::setw(18) << "bench" << std::right
       << std::setw(14) << "base cyc/s" << std::setw(14) << "cand cyc/s"
       << std::setw(9) << "delta" << "  verdict\n";
    os << std::fixed;
    for (const BenchDelta &d : result.deltas) {
        os << std::left << std::setw(18) << d.name << std::right
           << std::setprecision(0) << std::setw(14) << d.baseCps
           << std::setw(14) << d.candCps;
        os << std::setw(8) << std::setprecision(1) << d.deltaPct << "%";
        os << "  " << verdictName(d.verdict);
        if (!d.note.empty())
            os << " (" << d.note << ")";
        os << "\n";
    }
    // Informational power deltas (never part of the verdict).
    bool power_header = false;
    for (const BenchDelta &d : result.deltas) {
        if (d.baseWatts <= 0.0 && d.candWatts <= 0.0)
            continue;
        if (!power_header) {
            os << "modeled power (informational):\n";
            power_header = true;
        }
        os << "  " << std::left << std::setw(18) << d.name << std::right
           << std::setprecision(2) << std::setw(8) << d.baseWatts
           << " W -> " << std::setw(8) << d.candWatts << " W\n";
    }
    os << "tolerance: " << std::setprecision(0) << 100.0 * opt.tolerance
       << "% relative "
       << (result.regressed() ? "-> REGRESSION\n" : "-> ok\n");
    os.unsetf(std::ios::floatfield);
}

} // namespace beethoven
