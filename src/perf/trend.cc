#include "perf/trend.h"

#include <algorithm>
#include <iomanip>

namespace beethoven
{

namespace
{

/** First and last present nonzero-rate points of @p series. */
std::pair<int, int>
simulatingEndpoints(const std::vector<double> &series)
{
    int first = -1;
    int last = -1;
    for (int i = 0; i < static_cast<int>(series.size()); ++i) {
        if (series[i] <= 0.0)
            continue;
        if (first < 0)
            first = i;
        last = i;
    }
    return {first, last};
}

} // namespace

double
TrendReport::worstDropPct() const
{
    double worst = 0.0;
    for (const BenchTrend &b : benches)
        worst = std::max(worst, -b.deltaPct);
    return worst;
}

TrendReport
buildTrend(const std::vector<BenchSuite> &suites)
{
    TrendReport report;
    for (const BenchSuite &s : suites)
        report.labels.push_back(s.label);

    for (std::size_t si = 0; si < suites.size(); ++si) {
        for (const BenchPerfRecord &rec : suites[si].benches) {
            auto it = std::find_if(
                report.benches.begin(), report.benches.end(),
                [&](const BenchTrend &b) { return b.name == rec.name; });
            if (it == report.benches.end()) {
                BenchTrend t;
                t.name = rec.name;
                t.cps.assign(suites.size(), BenchTrend::kAbsent);
                report.benches.push_back(std::move(t));
                it = report.benches.end() - 1;
            }
            it->cps[si] = rec.cyclesPerSec;
        }
    }

    for (BenchTrend &b : report.benches) {
        const auto [first, last] = simulatingEndpoints(b.cps);
        if (first >= 0 && last > first)
            b.deltaPct = 100.0 * (b.cps[last] / b.cps[first] - 1.0);
    }
    return report;
}

void
writeTrendTable(std::ostream &os, const TrendReport &report)
{
    os << std::left << std::setw(18) << "bench (cyc/s)";
    for (const std::string &l : report.labels)
        os << std::right << std::setw(13)
           << (l.size() > 12 ? l.substr(0, 12) : l);
    os << std::right << std::setw(9) << "delta" << "\n";
    os << std::fixed;
    for (const BenchTrend &b : report.benches) {
        os << std::left << std::setw(18) << b.name;
        for (double v : b.cps) {
            if (v < 0.0)
                os << std::right << std::setw(13) << "-";
            else
                os << std::right << std::setprecision(0)
                   << std::setw(13) << v;
        }
        os << std::setw(8) << std::showpos << std::setprecision(1)
           << b.deltaPct << std::noshowpos << "%\n";
    }
    os.unsetf(std::ios::floatfield);
}

void
writeTrendJson(std::ostream &os, const TrendReport &report)
{
    os << "{\n \"schema\": \"beethoven-perf-trend-1\",\n \"points\": [";
    for (std::size_t i = 0; i < report.labels.size(); ++i)
        os << (i != 0 ? ", " : "") << "\"" << jsonEscape(report.labels[i])
           << "\"";
    os << "],\n \"benches\": [";
    bool first_bench = true;
    for (const BenchTrend &b : report.benches) {
        os << (first_bench ? "" : ",") << "\n  {\n   \"name\": \""
           << jsonEscape(b.name) << "\",\n   \"cycles_per_sec\": [";
        first_bench = false;
        for (std::size_t i = 0; i < b.cps.size(); ++i) {
            os << (i != 0 ? ", " : "");
            if (b.cps[i] < 0.0)
                os << "null";
            else
                os << b.cps[i];
        }
        os << "],\n   \"delta_pct\": " << b.deltaPct << "\n  }";
    }
    os << "\n ]\n}\n";
}

} // namespace beethoven
