/**
 * @file
 * Run-level host KPIs: the process-wide numbers a perf trajectory
 * tracks per bench — wall time, simulated cycles (and module ticks)
 * per second, peak RSS, and allocation churn.
 *
 * These complement the HostProfiler's per-component breakdown: the
 * profiler says *where* host time goes, the KPIs say *how fast* the
 * whole process converted wall-clock into simulated cycles. They are
 * collected by bench_cli and serialized into --perf-json output
 * (schema "beethoven-perf-1"), which tools/soc_perf aggregates into
 * the committed BENCH_<label>.json trajectory files.
 */

#ifndef BEETHOVEN_PERF_KPI_H
#define BEETHOVEN_PERF_KPI_H

#include <ostream>
#include <string>

#include "base/types.h"

namespace beethoven
{

class HostProfiler;

/**
 * Process-wide allocation counters, maintained by the global operator
 * new/delete overrides in alloc_counter.cc. The overrides are linked
 * into a binary only when something in it references this function
 * (the usual static-archive pull-in rule), so binaries that never ask
 * for KPIs keep the toolchain's default allocator entry points.
 */
struct AllocCounters
{
    u64 allocs = 0; ///< operator new calls
    u64 frees = 0;  ///< operator delete calls (non-null)
    u64 bytes = 0;  ///< bytes requested through operator new
};

AllocCounters allocCounters();

/**
 * Peak resident set size in KiB: VmHWM from /proc/self/status where
 * available, otherwise getrusage(RUSAGE_SELF) ru_maxrss. 0 if neither
 * source exists.
 */
u64 peakRssKb();

/**
 * Write one "beethoven-perf-1" JSON object: run-level KPIs plus the
 * profiler's heartbeat and (when per-component timing ran) host-time
 * breakdown.
 *
 * @param bench    bench name (argv[0] basename)
 * @param quick    whether the run was a --quick run
 * @param wall_ns  process wall time covered by the KPIs
 * @param cycles   simulated cycles stepped (globalSimCycles())
 * @param ticks    module ticks executed (globalModuleTicks())
 * @param prof     attached profiler, or nullptr
 */
void writePerfJson(std::ostream &os, const std::string &bench,
                   bool quick, u64 wall_ns, u64 cycles, u64 ticks,
                   const HostProfiler *prof);

} // namespace beethoven

#endif // BEETHOVEN_PERF_KPI_H
