/**
 * @file
 * The perf trajectory across commits: fold an ordered sequence of
 * BENCH suites (oldest first) into one per-bench cycles/sec series.
 * Kept out of the CLI so the series/verdict rules are unit-tested
 * directly (tests/perf_test.cc) and tools/perf_trend stays a thin
 * shell over file discovery and rendering.
 */

#ifndef BEETHOVEN_PERF_TREND_H
#define BEETHOVEN_PERF_TREND_H

#include <ostream>
#include <string>
#include <vector>

#include "perf/bench_json.h"

namespace beethoven
{

/** One bench's cycles/sec series across the measured commits. */
struct BenchTrend
{
    std::string name;
    /**
     * cycles/sec per point, aligned with TrendReport::labels. A bench
     * absent from a commit (coverage added later / lost) records a
     * negative sentinel; 0 is a real value (elaboration-only bench).
     */
    std::vector<double> cps;
    static constexpr double kAbsent = -1.0;

    /**
     * Relative change from the first to the last present point with a
     * nonzero rate, in percent (+ = faster). 0 when fewer than two
     * such points exist.
     */
    double deltaPct = 0.0;
};

struct TrendReport
{
    /** Suite labels, oldest first (the x axis). */
    std::vector<std::string> labels;
    /** One row per bench name, in first-appearance order. */
    std::vector<BenchTrend> benches;

    /**
     * Largest first-to-last decline over all benches, in percent
     * (>= 0; 0 when nothing declined).
     */
    double worstDropPct() const;
};

/** Fold @p suites (oldest first) into the per-bench trajectory. */
TrendReport buildTrend(const std::vector<BenchSuite> &suites);

/** Human-readable benches x commits table with first-to-last deltas. */
void writeTrendTable(std::ostream &os, const TrendReport &report);

/** Machine-readable document, schema "beethoven-perf-trend-1". */
void writeTrendJson(std::ostream &os, const TrendReport &report);

} // namespace beethoven

#endif // BEETHOVEN_PERF_TREND_H
