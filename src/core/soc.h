/**
 * @file
 * AcceleratorSoc — elaboration of an AcceleratorConfig onto a Platform
 * (the BeethovenBuild step of Fig. 3a).
 *
 * Elaboration performs, in order:
 *
 *  1. validation of the user configuration;
 *  2. SLR-aware placement of every core (logic estimates);
 *  3. construction of the DRAM controller and the four memory fabric
 *     trees (AR / R / W / B), with per-SLR subtrees and buffered
 *     crossings;
 *  4. construction of each core's Readers, Writers and Scratchpads,
 *     mapping every on-chip memory through the floorplanner's
 *     80 %-spill rule and recording the mapping (Table II's
 *     BRAM-vs-URAM variants);
 *  5. construction of the command/response fabric and the MMIO
 *     front-end;
 *  6. wiring of intra-core memory ports across systems;
 *  7. invocation of the user's core constructors;
 *  8. interconnect resource accounting and a final fit check.
 *
 * The resulting object owns the entire simulated design plus its
 * Simulator; the host runtime (runtime/fpga_handle.h) attaches to it.
 */

#ifndef BEETHOVEN_CORE_SOC_H
#define BEETHOVEN_CORE_SOC_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cmd/mmio.h"
#include "core/accelerator_core.h"
#include "core/config.h"
#include "dram/controller.h"
#include "floorplan/floorplan.h"
#include "lint/diagnostic.h"
#include "noc/tree.h"
#include "platform/platform.h"

namespace beethoven
{

class TraceProbe;
class PowerLedger;

/** Where one logical on-chip memory ended up (Table II evidence). */
struct MemoryMappingRecord
{
    std::string system;
    u32 core = 0;
    std::string owner; ///< channel or scratchpad name
    std::string role;  ///< "scratchpad" | "reader-buffer" | "writer-stage"
    unsigned slr = 0;
    CompiledMemory mapping;
};

class AcceleratorSoc
{
  public:
    /**
     * Elaborate @p config onto @p platform.
     * @note the platform must outlive the SoC.
     * @throws ConfigError on invalid configurations (duplicate names,
     *         AXI ID exhaustion, designs that do not fit the device).
     */
    AcceleratorSoc(AcceleratorConfig config, const Platform &platform);
    ~AcceleratorSoc();

    AcceleratorSoc(const AcceleratorSoc &) = delete;
    AcceleratorSoc &operator=(const AcceleratorSoc &) = delete;

    Simulator &sim() { return _sim; }
    const Simulator &sim() const { return _sim; }
    FunctionalMemory &memory() { return _mem; }
    MmioCommandSystem &mmio() { return *_mmio; }
    DramController &dram() { return *_dram; }
    Floorplanner &floorplan() { return *_floorplan; }
    const Platform &platform() const { return _platform; }
    const AcceleratorConfig &config() const { return _config; }

    u32 systemIdOf(const std::string &system_name) const;
    const AcceleratorSystemConfig &
    systemConfig(const std::string &system_name) const;

    /** Total cores across all systems. */
    std::size_t numCores() const { return _cores.size(); }

    AcceleratorCore &core(const std::string &system_name, u32 idx);

    /** SLR each core of @p system_name was placed on. */
    std::vector<unsigned> coreSlrs(const std::string &system_name) const;

    const std::vector<MemoryMappingRecord> &memoryMappings() const
    {
        return _memoryMappings;
    }

    /** Beethoven-generated interconnect logic (all fabric trees). */
    const ResourceVec &interconnectResources() const
    {
        return _interconnectResources;
    }

    /** Per-core Beethoven-generated + kernel logic (no memory blocks). */
    ResourceVec coreLogicResources(const std::string &system_name) const;

    /**
     * AXI ID-space actually allocated to read / write endpoints by
     * elaboration. The live protocol invariants use these to flag any
     * bus ID outside the allocated range ("AXI-ID leak").
     */
    u32 readIdsInUse() const { return _readIdsInUse; }
    u32 writeIdsInUse() const { return _writeIdsInUse; }

    /** Total flits currently buffered in all memory-fabric NoC trees. */
    std::size_t nocOccupancy() const;

    /** Cumulative node-hops forwarded through every fabric tree. */
    double nocFlits() const;

    /**
     * Energy decomposition of this SoC (built last in elaboration and
     * registered with the simulator). Per-core, DRAM, per-SLR NoC,
     * MMIO, shell and static-baseline components whose energies sum
     * exactly to the SoC total (DESIGN.md §4f).
     */
    PowerLedger &power();

    /**
     * Run the simulation-graph analyzer (src/analysis/, DESIGN.md §5d)
     * over this SoC's elaborated graph and composition model. The
     * constructor already ran it and failed on errors (unless deferred
     * via analysis::ScopedDeferGraphValidation); call this to get the
     * full report including warnings and notes.
     */
    lint::DiagnosticReport analyzeGraph() const;

  private:
    struct SystemInstance;

    void validate();
    ResourceVec estimateCoreLogic(const AcceleratorSystemConfig &sys,
                                  const AxiConfig &bus) const;
    void placeCores();
    void buildMemoryFabric();
    void buildCommandFabric();
    void buildCores();
    void wireIntraCorePorts();
    void accountInterconnect();
    void checkFit() const;
    void buildTraceProbe();
    void registerHangDumpers();
    void buildPowerLedger();

    /** Stamp the candidate shard partition into the graph record. */
    void assignShards();
    /** Register cross-module mutable state for the shard audit. */
    void registerSharedState();
    /** Constructor-tail graph analysis; fatal on contract errors. */
    void validateGraph();

    AcceleratorConfig _config;
    const Platform &_platform;
    AxiConfig _bus;

    Simulator _sim;
    FunctionalMemory _mem;
    std::unique_ptr<Floorplanner> _floorplan;
    std::unique_ptr<DramController> _dram;
    std::unique_ptr<MmioCommandSystem> _mmio;

    // Placement results: per system, per core, the SLR index.
    std::vector<std::vector<unsigned>> _coreSlr;

    // Memory fabric.
    std::unique_ptr<MuxTree<ReadRequest>> _arTree;
    std::unique_ptr<DemuxTree<ReadBeat>> _rTree;
    std::unique_ptr<MuxTree<WriteFlit, WriteFlitLock>> _wTree;
    std::unique_ptr<DemuxTree<WriteResponse>> _bTree;
    std::unique_ptr<QueuePump<ReadBeat>> _rPump;
    std::unique_ptr<QueuePump<WriteResponse>> _bPump;

    // Command fabric.
    std::unique_ptr<DemuxTree<RoccCommand>> _cmdTree;
    std::unique_ptr<MuxTree<RoccResponse>> _respTree;
    std::unique_ptr<QueuePump<RoccCommand>> _cmdPump;

    /** Feeds an attached TraceSink with NoC occupancy; inert otherwise. */
    std::unique_ptr<TraceProbe> _nocProbe;

    /** Energy decomposition (built after checkFit; see power()). */
    std::unique_ptr<PowerLedger> _power;

    // Owned hardware, in construction order.
    std::vector<std::unique_ptr<Reader>> _readers;
    std::vector<std::unique_ptr<Writer>> _writers;
    std::vector<std::unique_ptr<Scratchpad>> _scratchpads;
    std::vector<std::unique_ptr<Module>> _bridges; ///< intra-core glue
    std::vector<std::unique_ptr<AcceleratorCore>> _cores;

    // Context under construction for each core (flattened).
    std::vector<CoreContext> _contexts;
    std::map<std::string, u32> _systemIds;

    std::vector<MemoryMappingRecord> _memoryMappings;
    ResourceVec _interconnectResources;

    // Endpoint bookkeeping built during fabric construction.
    struct MemEndpointPlan
    {
        bool isWriter = false;
        std::string system;
        u32 core = 0;
        std::string channel;
        u32 channelIdx = 0;
        bool isSpadInit = false;
        unsigned slr = 0;
        ReaderParams readerParams;
        WriterParams writerParams;
        u32 idBase = 0;
    };
    std::vector<MemEndpointPlan> _readPlans;
    std::vector<MemEndpointPlan> _writePlans;

    // AXI ID-space consumed by the allocation above (for invariants).
    u32 _readIdsInUse = 0;
    u32 _writeIdsInUse = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_CORE_SOC_H
