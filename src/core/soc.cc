#include "core/soc.h"

#include <algorithm>

#include "analysis/analyze.h"
#include "base/log.h"
#include "core/elab_params.h"
#include "lint/lint.h"
#include "mem/resource_model.h"
#include "power/power.h"
#include "sim/graph_record.h"
#include "trace/trace.h"

namespace beethoven
{

namespace
{

/**
 * Register one fabric tree with the NoC probe: a busy-interval track
 * over its total link occupancy plus per-link occupancy counters,
 * sampled only while a TraceSink is attached to the simulator.
 */
template <typename Tree>
void
hookTree(TraceProbe &probe, const std::string &track, Tree &tree)
{
    probe.addBusyTrack(track, [&tree] { return tree.occupancy(); });
    probe.addCounterSampler([&tree](TraceSink &ts, Cycle at) {
        tree.visitLinkOccupancy(
            [&ts, at](const std::string &link, std::size_t occ) {
                ts.counter("noc", link + ".occ", at,
                           static_cast<double>(occ));
            });
    });
}

/**
 * Connects an IntraCoreMemoryPortOut to target cores' scratchpad write
 * ports, optionally broadcasting (Section II-A: "Beethoven also allows
 * Cores to communicate with each other").
 */
class IntraCoreBridge : public Module
{
  public:
    IntraCoreBridge(Simulator &sim, std::string name, unsigned latency,
                    bool broadcast)
        : Module(sim, std::move(name)),
          _srcQ(sim, 4, latency),
          _broadcast(broadcast)
    {
        declareRole("bridge");
        declareSleepable();
        _srcQ.setWakeOnPush(this);
    }

    TimedQueue<SpadRequest> &srcQueue() { return _srcQ; }

    void
    addTarget(TimedQueue<SpadRequest> *t)
    {
        t->setWakeOnPop(this);
        _targets.push_back(t);
    }

    void
    tick() override
    {
        if (!_srcQ.canPop()) {
            requestSleep(); // re-armed by the next srcQueue push
            return;
        }
        if (_broadcast) {
            for (auto *t : _targets) {
                if (!t->canPush()) {
                    requestSleep(); // re-armed when the target drains
                    return;
                }
            }
            const SpadRequest req = _srcQ.pop();
            for (auto *t : _targets)
                t->push(req);
        } else {
            beethoven_assert(_targets.size() == 1,
                             "point-to-point bridge with %zu targets",
                             _targets.size());
            if (_targets[0]->canPush())
                _targets[0]->push(_srcQ.pop());
            else
                requestSleep(); // re-armed when the target drains
        }
    }

  private:
    TimedQueue<SpadRequest> _srcQ;
    std::vector<TimedQueue<SpadRequest> *> _targets;
    bool _broadcast;
};

} // namespace

AcceleratorSoc::AcceleratorSoc(AcceleratorConfig config,
                               const Platform &platform)
    : _config(std::move(config)),
      _platform(platform),
      _bus(platform.memoryConfig())
{
    validate();
    _floorplan = std::make_unique<Floorplanner>(
        platform.slrs(), platform.memoryCongestionDerate());
    placeCores();

    DramController::Config dram_cfg;
    dram_cfg.axi = _bus;
    dram_cfg.timing = platform.dramTiming();
    dram_cfg.geometry = platform.dramGeometry();
    _dram = std::make_unique<DramController>(_sim, "ddr", dram_cfg, _mem);
    _mmio = std::make_unique<MmioCommandSystem>(_sim, "mmio");

    // Flattened core contexts, filled in by the build steps below.
    std::size_t total_cores = 0;
    for (const auto &sys : _config.systems)
        total_cores += sys.nCores;
    _contexts.resize(total_cores);
    {
        std::size_t flat = 0;
        for (u32 s = 0; s < _config.systems.size(); ++s) {
            _systemIds[_config.systems[s].name] = s;
            for (u32 c = 0; c < _config.systems[s].nCores; ++c, ++flat) {
                CoreContext &ctx = _contexts[flat];
                ctx.sim = &_sim;
                ctx.name = _config.systems[s].name + ".core" +
                           std::to_string(c);
                ctx.systemId = s;
                ctx.coreIdx = c;
                ctx.systemConfig = &_config.systems[s];
            }
        }
    }

    buildMemoryFabric();
    buildCommandFabric();
    wireIntraCorePorts();
    buildCores();
    buildTraceProbe();
    registerHangDumpers();
    accountInterconnect();
    checkFit();
    buildPowerLedger();

    // Static analysis of the elaborated simulation graph: stamp the
    // candidate shard partition, register cross-module mutable state,
    // then prove the wake/sleep contract (DESIGN.md §5d).
    assignShards();
    registerSharedState();
    validateGraph();
}

std::size_t
AcceleratorSoc::nocOccupancy() const
{
    std::size_t occ = 0;
    if (_arTree)
        occ += _arTree->occupancy();
    if (_rTree)
        occ += _rTree->occupancy();
    if (_wTree)
        occ += _wTree->occupancy();
    if (_bTree)
        occ += _bTree->occupancy();
    if (_cmdTree)
        occ += _cmdTree->occupancy();
    if (_respTree)
        occ += _respTree->occupancy();
    return occ;
}

void
AcceleratorSoc::registerHangDumpers()
{
    _sim.addHangDumper(
        [this](std::ostream &os) { _dram->dumpInFlight(os); });
    auto dump_tree = [](std::ostream &os, const std::string &track,
                        const auto &tree) {
        os << "  " << track << " links (nonzero occupancy):\n";
        bool any = false;
        tree.visitLinkOccupancy(
            [&os, &any](const std::string &link, std::size_t occ) {
                if (occ == 0)
                    return;
                any = true;
                os << "    " << link << ": " << occ << "\n";
            });
        if (!any)
            os << "    (all empty)\n";
    };
    _sim.addHangDumper([this, dump_tree](std::ostream &os) {
        os << "NoC link occupancy:\n";
        if (_arTree)
            dump_tree(os, "noc.ar", *_arTree);
        if (_rTree)
            dump_tree(os, "noc.r", *_rTree);
        if (_wTree)
            dump_tree(os, "noc.w", *_wTree);
        if (_bTree)
            dump_tree(os, "noc.b", *_bTree);
        if (_cmdTree)
            dump_tree(os, "noc.cmd", *_cmdTree);
        if (_respTree)
            dump_tree(os, "noc.resp", *_respTree);
    });
}

void
AcceleratorSoc::buildTraceProbe()
{
    _nocProbe = std::make_unique<TraceProbe>(_sim, "noc.probe");
    if (_arTree)
        hookTree(*_nocProbe, "noc.ar", *_arTree);
    if (_rTree)
        hookTree(*_nocProbe, "noc.r", *_rTree);
    if (_wTree)
        hookTree(*_nocProbe, "noc.w", *_wTree);
    if (_bTree)
        hookTree(*_nocProbe, "noc.b", *_bTree);
    if (_cmdTree)
        hookTree(*_nocProbe, "noc.cmd", *_cmdTree);
    if (_respTree)
        hookTree(*_nocProbe, "noc.resp", *_respTree);
}

AcceleratorSoc::~AcceleratorSoc() = default;

double
AcceleratorSoc::nocFlits() const
{
    double f = 0.0;
    if (_arTree)
        f += _arTree->flits();
    if (_rTree)
        f += _rTree->flits();
    if (_wTree)
        f += _wTree->flits();
    if (_bTree)
        f += _bTree->flits();
    if (_cmdTree)
        f += _cmdTree->flits();
    if (_respTree)
        f += _respTree->flits();
    return f;
}

PowerLedger &
AcceleratorSoc::power()
{
    return *_power;
}

void
AcceleratorSoc::buildPowerLedger()
{
    const PowerModel pm = _platform.powerModel();
    _power = std::make_unique<PowerLedger>(
        _platform.clockMHz(),
        static_cast<unsigned>(_floorplan->numSlrs()));

    // Flattened (system, core) offsets — the same order _contexts,
    // _cores and placedCores() were filled in.
    std::vector<std::size_t> sys_offsets(_config.systems.size(), 0);
    {
        std::size_t flat = 0;
        for (std::size_t s = 0; s < _config.systems.size(); ++s) {
            sys_offsets[s] = flat;
            flat += _config.systems[s].nCores;
        }
    }

    // Attribute every mapped on-chip memory to its owning core so a
    // core's static share covers its logic *and* its memory blocks —
    // together with the interconnect/shell/baseline components below,
    // the static floor reproduces watts(totalUsed + totalShell).
    std::vector<ResourceVec> mem_res(_contexts.size());
    for (const MemoryMappingRecord &m : _memoryMappings) {
        const std::size_t flat =
            sys_offsets[_systemIds.at(m.system)] + m.core;
        mem_res[flat] += m.mapping.resources;
    }

    const auto &placed = _floorplan->placedCores();
    const double data_bytes = static_cast<double>(_bus.dataBytes);
    for (std::size_t flat = 0; flat < _contexts.size(); ++flat) {
        const CoreContext &ctx = _contexts[flat];
        const AcceleratorCore *core = _cores[flat].get();
        std::vector<const Scratchpad *> spads;
        for (const auto &kv : ctx.scratchpads)
            spads.push_back(kv.second);
        std::vector<const Reader *> readers;
        for (const auto &kv : ctx.readers)
            for (const Reader *r : kv.second)
                if (r != nullptr)
                    readers.push_back(r);
        std::vector<const Writer *> writers;
        for (const auto &kv : ctx.writers)
            for (const Writer *w : kv.second)
                if (w != nullptr)
                    writers.push_back(w);
        const double core_op_pj = pm.coreOpPj;
        const double spad_pj = pm.spadAccessPj;
        // Reader/Writer stream buffers are charged at the scratchpad
        // access rate per bus-width word moved; their DRAM and NoC
        // sides are covered by the ddr / noc components.
        _power->add(
            ctx.name, placed[flat].slr,
            pm.dynamicResourceWatts(placed[flat].resources +
                                    mem_res[flat]),
            [core, spads, readers, writers, core_op_pj, spad_pj,
             data_bytes]() {
                double pj =
                    static_cast<double>(core->busyCycles()) * core_op_pj;
                for (const Scratchpad *sp : spads)
                    pj += static_cast<double>(sp->accesses()) * spad_pj;
                for (const Reader *r : readers)
                    pj += r->bytesRead() / data_bytes * spad_pj;
                for (const Writer *w : writers)
                    pj += w->bytesWritten() / data_bytes * spad_pj;
                return pj;
            });
    }

    {
        const DramController *dram = _dram.get();
        const double col_pj = pm.dramColumnPj;
        const double act_pj = pm.dramActivatePj;
        _power->add("ddr", _platform.memorySlr(), 0.0,
                    [dram, col_pj, act_pj]() {
                        return dram->columnOps() * col_pj +
                               (dram->activates() + dram->refreshes()) *
                                   act_pj;
                    });
    }

    // Interconnect, split per SLR with the same core-proportional
    // fractions accountInterconnect used for the resource charge.
    std::vector<double> cores_per_slr(_floorplan->numSlrs(), 0.0);
    double n = 0.0;
    for (const auto &per_sys : _coreSlr) {
        for (unsigned slr : per_sys) {
            cores_per_slr[slr] += 1.0;
            n += 1.0;
        }
    }
    const double noc_static =
        pm.dynamicResourceWatts(_interconnectResources);
    const double flit_pj = pm.nocFlitHopPj;
    for (std::size_t slr = 0; slr < cores_per_slr.size(); ++slr) {
        if (n <= 0.0 || cores_per_slr[slr] <= 0.0)
            continue;
        const double frac = cores_per_slr[slr] / n;
        _power->add("noc.slr" + std::to_string(slr),
                    static_cast<unsigned>(slr), noc_static * frac,
                    [this, frac, flit_pj]() {
                        return nocFlits() * flit_pj * frac;
                    });
    }

    // MMIO front-end: its logic is already inside the interconnect
    // static share, so this component is pure event energy.
    {
        const MmioCommandSystem *mmio = _mmio.get();
        const double txn_pj = pm.mmioTxnPj;
        _power->add("mmio", _platform.hostSlr(), 0.0,
                    [mmio, txn_pj]() {
                        return static_cast<double>(mmio->transactions()) *
                               txn_pj;
                    });
    }

    for (unsigned s = 0; s < _floorplan->numSlrs(); ++s) {
        const double w =
            pm.dynamicResourceWatts(_floorplan->slr(s).shellFootprint);
        if (w > 0.0)
            _power->add("shell.slr" + std::to_string(s), s, w,
                        []() { return 0.0; });
    }
    _power->add("static", _platform.hostSlr(), pm.staticWatts,
                []() { return 0.0; });

    _sim.setPowerLedger(_power.get());
}

void
AcceleratorSoc::assignShards()
{
    SimGraphRecord &rec = _sim.graphRecord();

    // Candidate partition at the NoC/AXI boundaries: one host shard
    // (MMIO front-end and command pump), one shard per SLR (cores and
    // their memory endpoints), one memory shard (DRAM controller and
    // the return pumps). ids: host = 0, SLR s = 1 + s, mem = last.
    const int host_shard = 0;
    const unsigned n_slrs = static_cast<unsigned>(_floorplan->numSlrs());
    const int mem_shard = static_cast<int>(n_slrs) + 1;
    rec.defineShard(host_shard, "host");
    for (unsigned s = 0; s < n_slrs; ++s)
        rec.defineShard(1 + static_cast<int>(s),
                        "slr" + std::to_string(s));
    rec.defineShard(mem_shard, "mem");

    rec.setShard(_mmio.get(), host_shard);
    rec.setShard(_cmdPump.get(), host_shard);
    rec.setShard(_nocProbe.get(), host_shard);

    rec.setShard(_dram.get(), mem_shard);
    if (_rPump)
        rec.setShard(_rPump.get(), mem_shard);
    if (_bPump)
        rec.setShard(_bPump.get(), mem_shard);

    // Cores and their scratchpads go with the SLR placement decided.
    for (std::size_t flat = 0; flat < _contexts.size(); ++flat) {
        const CoreContext &ctx = _contexts[flat];
        const int shard =
            1 + static_cast<int>(_coreSlr[ctx.systemId][ctx.coreIdx]);
        rec.setShard(_cores[flat].get(), shard);
        for (const auto &kv : ctx.scratchpads)
            rec.setShard(kv.second, shard);
    }

    // Memory endpoints: _readers / _writers were pushed in plan order.
    for (std::size_t i = 0; i < _readers.size(); ++i)
        rec.setShard(_readers[i].get(),
                     1 + static_cast<int>(_readPlans[i].slr));
    for (std::size_t i = 0; i < _writers.size(); ++i)
        rec.setShard(_writers[i].get(),
                     1 + static_cast<int>(_writePlans[i].slr));

    // NoC tree nodes carry their own SLR; the root sits on the shard
    // of whatever is on its far side (DRAM for the memory fabric, the
    // MMIO front-end for the command fabric) because that is where its
    // port is serviced.
    auto assign_tree = [&rec](const auto &tree, int root_shard) {
        tree.visitNodes(
            [&rec, root_shard](Module &m, unsigned slr, bool is_root) {
                rec.setShard(&m, is_root ? root_shard
                                         : 1 + static_cast<int>(slr));
            });
    };
    if (_arTree)
        assign_tree(*_arTree, mem_shard);
    if (_rTree)
        assign_tree(*_rTree, mem_shard);
    if (_wTree)
        assign_tree(*_wTree, mem_shard);
    if (_bTree)
        assign_tree(*_bTree, mem_shard);
    assign_tree(*_cmdTree, host_shard);
    assign_tree(*_respTree, host_shard);
    // (Intra-core bridges were stamped at creation in
    // wireIntraCorePorts, where their source core's SLR was in scope.)
}

void
AcceleratorSoc::registerSharedState()
{
    SimGraphRecord &rec = _sim.graphRecord();
    const int host_shard = 0;

    auto tree_modules = [](const auto &tree) {
        std::vector<Module *> mods;
        tree.visitNodes(
            [&mods](Module &m, unsigned, bool) { mods.push_back(&m); });
        return mods;
    };

    // Trace occupancy pulls: buildTraceProbe hooked closures that walk
    // every tree's link occupancy from the probe's (host-side) sampler.
    auto add_trace_state = [&](const std::string &track,
                               const auto &tree) {
        SimGraphRecord::SharedState st;
        st.name = "trace." + track;
        st.kind = "trace";
        st.site = std::source_location::current();
        st.accessors = tree_modules(tree);
        st.accessors.push_back(_nocProbe.get());
        st.resolution =
            "occupancy pulls only run while a TraceSink is attached; "
            "the parallel kernel refuses to start with one";
        rec.addSharedState(std::move(st));
    };
    if (_arTree)
        add_trace_state("noc.ar", *_arTree);
    if (_rTree)
        add_trace_state("noc.r", *_rTree);
    if (_wTree)
        add_trace_state("noc.w", *_wTree);
    if (_bTree)
        add_trace_state("noc.b", *_bTree);
    add_trace_state("noc.cmd", *_cmdTree);
    add_trace_state("noc.resp", *_respTree);

    // Power-ledger pull closures (buildPowerLedger): per-core energy
    // reads core/scratchpad/reader/writer counters; the ledger itself
    // is polled from the host side, hence the extra host shard.
    for (std::size_t flat = 0; flat < _contexts.size(); ++flat) {
        const CoreContext &ctx = _contexts[flat];
        SimGraphRecord::SharedState st;
        st.name = "power." + ctx.name;
        st.kind = "power";
        st.site = std::source_location::current();
        st.accessors.push_back(_cores[flat].get());
        for (const auto &kv : ctx.scratchpads)
            st.accessors.push_back(kv.second);
        for (const auto &kv : ctx.readers)
            for (Reader *r : kv.second)
                if (r != nullptr)
                    st.accessors.push_back(r);
        for (const auto &kv : ctx.writers)
            for (Writer *w : kv.second)
                if (w != nullptr)
                    st.accessors.push_back(w);
        st.extraShards.push_back(host_shard);
        st.resolution =
            "energy pulls only run from an attached PowerMeter's "
            "sampler; the parallel kernel refuses to start with one";
        rec.addSharedState(std::move(st));
    }
    {
        SimGraphRecord::SharedState st;
        st.name = "power.ddr";
        st.kind = "power";
        st.site = std::source_location::current();
        st.accessors.push_back(_dram.get());
        st.extraShards.push_back(host_shard);
        st.resolution =
            "energy pulls only run from an attached PowerMeter's "
            "sampler; the parallel kernel refuses to start with one";
        rec.addSharedState(std::move(st));
    }
    {
        // The per-SLR NoC components all pull nocFlits(), which reads
        // the hop counters of every tree: one state, many accessors.
        SimGraphRecord::SharedState st;
        st.name = "power.noc";
        st.kind = "power";
        st.site = std::source_location::current();
        auto add_tree = [&st, &tree_modules](const auto &tree) {
            for (Module *m : tree_modules(tree))
                st.accessors.push_back(m);
        };
        if (_arTree)
            add_tree(*_arTree);
        if (_rTree)
            add_tree(*_rTree);
        if (_wTree)
            add_tree(*_wTree);
        if (_bTree)
            add_tree(*_bTree);
        add_tree(*_cmdTree);
        add_tree(*_respTree);
        st.extraShards.push_back(host_shard);
        st.resolution =
            "nocFlits() sums node-local counters and is only pulled "
            "from an attached PowerMeter's sampler; the parallel "
            "kernel refuses to start with one";
        rec.addSharedState(std::move(st));
    }
    {
        SimGraphRecord::SharedState st;
        st.name = "power.mmio";
        st.kind = "power";
        st.site = std::source_location::current();
        st.accessors.push_back(_mmio.get());
        st.extraShards.push_back(host_shard);
        st.resolution =
            "energy pulls only run from an attached PowerMeter's "
            "sampler; the parallel kernel refuses to start with one";
        rec.addSharedState(std::move(st));
    }

    // Host DMA and the DRAM model share the functional backing store.
    {
        SimGraphRecord::SharedState st;
        st.name = "mem.functional";
        st.kind = "dram-map";
        st.site = std::source_location::current();
        st.accessors.push_back(_dram.get());
        st.extraShards.push_back(host_shard);
        st.resolution =
            "host-link DMA raises a serial fence "
            "(HostInterface::hasPendingDma); the coordinator steps "
            "merged single cycles until the transfer lands, so the "
            "backing store is never written concurrently with DRAM "
            "traffic";
        rec.addSharedState(std::move(st));
    }

    // Hang dumpers walk the DRAM in-flight per-ID maps from whatever
    // thread trips the watchdog.
    {
        SimGraphRecord::SharedState st;
        st.name = "ddr.in-flight";
        st.kind = "dram-map";
        st.site = std::source_location::current();
        st.accessors.push_back(_dram.get());
        st.extraShards.push_back(host_shard);
        st.resolution =
            "hang dumpers only walk the maps after the watchdog trips "
            "at an epoch barrier, when every worker is parked";
        rec.addSharedState(std::move(st));
    }
}

void
AcceleratorSoc::validateGraph()
{
    if (analysis::socGraphValidationDeferred())
        return;
    const lint::DiagnosticReport report = analysis::analyzeSoc(*this);
    if (report.hasErrors()) {
        fatal("simulation-graph contract violated: %zu error(s), "
              "%zu warning(s)\n%s",
              report.errorCount(), report.warningCount(),
              report.format().c_str());
    }
}

lint::DiagnosticReport
AcceleratorSoc::analyzeGraph() const
{
    return analysis::analyzeSoc(*this);
}

void
AcceleratorSoc::validate()
{
    // Run the composition linter over the unbuilt config so that an
    // invalid composition reports *every* violation in one failure
    // instead of first-error-wins. Warnings alone never block a
    // build; surface them with tools/soc_lint.
    const lint::DiagnosticReport report =
        lint::lintComposition(_config, _platform);
    if (report.hasErrors()) {
        fatal("invalid composition: %zu error(s), %zu warning(s)\n%s",
              report.errorCount(), report.warningCount(),
              report.format().c_str());
    }
}

ResourceVec
AcceleratorSoc::estimateCoreLogic(const AcceleratorSystemConfig &sys,
                                  const AxiConfig &bus) const
{
    return beethoven::estimateCoreLogic(sys, _platform, bus);
}

void
AcceleratorSoc::placeCores()
{
    _coreSlr.resize(_config.systems.size());
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        const auto &sys = _config.systems[s];
        const ResourceVec est = estimateCoreLogic(sys, _bus);
        _coreSlr[s].resize(sys.nCores);
        for (u32 c = 0; c < sys.nCores; ++c) {
            _coreSlr[s][c] = _floorplan->placeCore(
                sys.name + "_core" + std::to_string(c), est);
        }
    }
}

void
AcceleratorSoc::buildMemoryFabric()
{
    const MemoryCellLibrary lib = _platform.cellLibrary();
    const MemoryCellKind preferred = _platform.preferredMemoryKind();

    // --- Gather endpoint plans ------------------------------------
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        const auto &sys = _config.systems[s];
        for (u32 c = 0; c < sys.nCores; ++c) {
            const unsigned slr = _coreSlr[s][c];
            for (const auto &rc : sys.readChannels) {
                for (u32 k = 0; k < rc.nChannels; ++k) {
                    MemEndpointPlan plan;
                    plan.system = sys.name;
                    plan.core = c;
                    plan.channel = rc.name;
                    plan.channelIdx = k;
                    plan.slr = slr;
                    plan.readerParams = resolveReaderParams(rc, _platform);
                    _readPlans.push_back(plan);
                }
            }
            for (const auto &sp : sys.scratchpads) {
                if (!sp.supportsInit)
                    continue;
                MemEndpointPlan plan;
                plan.system = sys.name;
                plan.core = c;
                plan.channel = sp.name;
                plan.isSpadInit = true;
                plan.slr = slr;
                plan.readerParams = spadInitReaderParams(sp, _platform);
                _readPlans.push_back(plan);
            }
            for (const auto &wc : sys.writeChannels) {
                for (u32 k = 0; k < wc.nChannels; ++k) {
                    MemEndpointPlan plan;
                    plan.isWriter = true;
                    plan.system = sys.name;
                    plan.core = c;
                    plan.channel = wc.name;
                    plan.channelIdx = k;
                    plan.slr = slr;
                    plan.writerParams = resolveWriterParams(wc, _platform);
                    _writePlans.push_back(plan);
                }
            }
        }
    }

    // --- AXI ID allocation ----------------------------------------
    auto read_id_map = std::make_shared<std::vector<std::size_t>>();
    auto write_id_map = std::make_shared<std::vector<std::size_t>>();
    u32 read_cursor = 0;
    for (std::size_t i = 0; i < _readPlans.size(); ++i) {
        auto &plan = _readPlans[i];
        plan.idBase = read_cursor;
        const u32 n = plan.readerParams.useTlp
                          ? plan.readerParams.maxInflight
                          : 1;
        read_cursor += n;
        for (u32 k = 0; k < n; ++k)
            read_id_map->push_back(i);
    }
    u32 write_cursor = 0;
    for (std::size_t i = 0; i < _writePlans.size(); ++i) {
        auto &plan = _writePlans[i];
        plan.idBase = write_cursor;
        const u32 n = plan.writerParams.useTlp
                          ? plan.writerParams.maxInflight
                          : 1;
        write_cursor += n;
        for (u32 k = 0; k < n; ++k)
            write_id_map->push_back(i);
    }
    _readIdsInUse = read_cursor;
    _writeIdsInUse = write_cursor;
    if (read_cursor > _bus.numIds() || write_cursor > _bus.numIds()) {
        fatal("design needs %u read / %u write AXI IDs but the platform "
              "provides %llu; reduce maxInflight or disable TLP on some "
              "channels",
              read_cursor, write_cursor,
              static_cast<unsigned long long>(_bus.numIds()));
    }

    if (_readPlans.empty() && _writePlans.empty())
        return; // a pure-compute accelerator: no memory fabric at all

    const NocParams noc = _platform.nocParams();
    const unsigned mem_slr = _platform.memorySlr();

    // --- Trees -----------------------------------------------------
    if (!_readPlans.empty()) {
        std::vector<unsigned> slrs;
        for (const auto &p : _readPlans)
            slrs.push_back(p.slr);
        _arTree = std::make_unique<MuxTree<ReadRequest>>(
            _sim, "noc.ar", slrs, mem_slr, noc, &_dram->arPort());
        _rTree = std::make_unique<DemuxTree<ReadBeat>>(
            _sim, "noc.r", slrs, mem_slr, noc,
            [read_id_map](const ReadBeat &b) {
                return (*read_id_map)[b.id];
            });
        _rPump = std::make_unique<QueuePump<ReadBeat>>(
            _sim, "noc.r.pump", &_dram->rPort(), &_rTree->rootPort());
    }
    if (!_writePlans.empty()) {
        std::vector<unsigned> slrs;
        for (const auto &p : _writePlans)
            slrs.push_back(p.slr);
        _wTree = std::make_unique<MuxTree<WriteFlit, WriteFlitLock>>(
            _sim, "noc.w", slrs, mem_slr, noc, &_dram->wPort());
        _bTree = std::make_unique<DemuxTree<WriteResponse>>(
            _sim, "noc.b", slrs, mem_slr, noc,
            [write_id_map](const WriteResponse &b) {
                return (*write_id_map)[b.id];
            });
        _bPump = std::make_unique<QueuePump<WriteResponse>>(
            _sim, "noc.b.pump", &_dram->bPort(), &_bTree->rootPort());
    }

    // --- Readers / Writers ------------------------------------------
    std::map<std::pair<std::size_t, std::string>, Reader *> init_readers;
    std::size_t flat_offset = 0;
    std::vector<std::size_t> sys_offsets(_config.systems.size());
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        sys_offsets[s] = flat_offset;
        flat_offset += _config.systems[s].nCores;
    }

    for (std::size_t i = 0; i < _readPlans.size(); ++i) {
        const auto &plan = _readPlans[i];
        const u32 sid = _systemIds.at(plan.system);
        const std::size_t flat = sys_offsets[sid] + plan.core;
        const std::string rname =
            _contexts[flat].name + "." + plan.channel +
            (plan.isSpadInit ? ".init"
                             : ".r" + std::to_string(plan.channelIdx));
        _readers.push_back(std::make_unique<Reader>(
            _sim, rname, plan.readerParams, _bus, plan.idBase,
            &_arTree->endpointPort(i), &_rTree->endpointPort(i)));
        Reader *reader = _readers.back().get();

        // Prefetch buffer on-chip memory (subject to the spill rule).
        const MemoryRequest mreq =
            readerBufferRequest(plan.readerParams, _bus);
        const CompiledMemory cm = _floorplan->mapMemory(
            plan.slr, lib, preferred, mreq.widthBits, mreq.depth,
            mreq.readPorts);
        _memoryMappings.push_back({plan.system, plan.core, plan.channel,
                                   "reader-buffer", plan.slr, cm});

        if (plan.isSpadInit) {
            init_readers[{flat, plan.channel}] = reader;
        } else {
            auto &vec = _contexts[flat].readers[plan.channel];
            if (vec.size() <= plan.channelIdx)
                vec.resize(plan.channelIdx + 1, nullptr);
            vec[plan.channelIdx] = reader;
        }
    }

    for (std::size_t i = 0; i < _writePlans.size(); ++i) {
        const auto &plan = _writePlans[i];
        const u32 sid = _systemIds.at(plan.system);
        const std::size_t flat = sys_offsets[sid] + plan.core;
        const std::string wname = _contexts[flat].name + "." +
                                  plan.channel + ".w" +
                                  std::to_string(plan.channelIdx);
        _writers.push_back(std::make_unique<Writer>(
            _sim, wname, plan.writerParams, _bus, plan.idBase,
            &_wTree->endpointPort(i), &_bTree->endpointPort(i)));

        const MemoryRequest mreq =
            writerBufferRequest(plan.writerParams, _bus);
        const CompiledMemory cm = _floorplan->mapMemory(
            plan.slr, lib, preferred, mreq.widthBits, mreq.depth,
            mreq.readPorts);
        _memoryMappings.push_back({plan.system, plan.core, plan.channel,
                                   "writer-stage", plan.slr, cm});

        auto &vec = _contexts[flat].writers[plan.channel];
        if (vec.size() <= plan.channelIdx)
            vec.resize(plan.channelIdx + 1, nullptr);
        vec[plan.channelIdx] = _writers.back().get();
    }

    // --- Scratchpads -------------------------------------------------
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        const auto &sys = _config.systems[s];
        for (u32 c = 0; c < sys.nCores; ++c) {
            const std::size_t flat = sys_offsets[s] + c;
            const unsigned slr = _coreSlr[s][c];
            for (const auto &sp : sys.scratchpads) {
                ScratchpadParams p;
                p.dataWidthBits = sp.dataWidthBits;
                p.nDatas = sp.nDatas;
                p.nPorts = sp.nPorts;
                p.latency = sp.latency;
                p.supportsInit = sp.supportsInit;
                Reader *init = nullptr;
                if (sp.supportsInit)
                    init = init_readers.at({flat, sp.name});
                _scratchpads.push_back(std::make_unique<Scratchpad>(
                    _sim, _contexts[flat].name + "." + sp.name, p,
                    init));
                _contexts[flat].scratchpads[sp.name] =
                    _scratchpads.back().get();

                const CompiledMemory cm = _floorplan->mapMemory(
                    slr, lib, preferred, sp.dataWidthBits, sp.nDatas,
                    sp.nPorts);
                _memoryMappings.push_back(
                    {sys.name, c, sp.name, "scratchpad", slr, cm});
            }
        }
    }
}

void
AcceleratorSoc::buildCommandFabric()
{
    std::vector<unsigned> core_slrs;
    auto sys_offsets = std::make_shared<std::vector<std::size_t>>();
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        sys_offsets->push_back(core_slrs.size());
        for (u32 c = 0; c < _config.systems[s].nCores; ++c)
            core_slrs.push_back(_coreSlr[s][c]);
    }

    const NocParams noc = _platform.nocParams();
    const unsigned host_slr = _platform.hostSlr();

    _cmdTree = std::make_unique<DemuxTree<RoccCommand>>(
        _sim, "noc.cmd", core_slrs, host_slr, noc,
        [sys_offsets](const RoccCommand &cmd) {
            return (*sys_offsets)[cmd.systemId()] + cmd.coreId();
        });
    _cmdPump = std::make_unique<QueuePump<RoccCommand>>(
        _sim, "noc.cmd.pump", &_mmio->cmdOut(), &_cmdTree->rootPort());

    _respTree = std::make_unique<MuxTree<RoccResponse>>(
        _sim, "noc.resp", core_slrs, host_slr, noc, &_mmio->respIn());

    for (std::size_t flat = 0; flat < _contexts.size(); ++flat) {
        _contexts[flat].cmdIn = &_cmdTree->endpointPort(flat);
        _contexts[flat].respOut = &_respTree->endpointPort(flat);
    }
}

void
AcceleratorSoc::wireIntraCorePorts()
{
    const MemoryCellLibrary lib = _platform.cellLibrary();
    const MemoryCellKind preferred = _platform.preferredMemoryKind();

    std::vector<std::size_t> sys_offsets(_config.systems.size());
    std::size_t flat_offset = 0;
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        sys_offsets[s] = flat_offset;
        flat_offset += _config.systems[s].nCores;
    }

    // Create the receive-side memories.
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        const auto &sys = _config.systems[s];
        for (const auto &pin : sys.intraMemoryIns) {
            for (u32 c = 0; c < sys.nCores; ++c) {
                const std::size_t flat = sys_offsets[s] + c;
                ScratchpadParams p;
                p.dataWidthBits = pin.dataWidthBits;
                p.nDatas = pin.nDatas;
                p.nPorts = std::max(1u, pin.nChannels);
                p.latency = pin.latency;
                p.supportsInit = false;
                _scratchpads.push_back(std::make_unique<Scratchpad>(
                    _sim, _contexts[flat].name + "." + pin.name, p,
                    nullptr));
                _contexts[flat].scratchpads[pin.name] =
                    _scratchpads.back().get();

                const CompiledMemory cm = _floorplan->mapMemory(
                    _coreSlr[s][c], lib, preferred, pin.dataWidthBits,
                    pin.nDatas, p.nPorts);
                _memoryMappings.push_back({sys.name, c, pin.name,
                                           "scratchpad", _coreSlr[s][c],
                                           cm});
            }
        }
    }

    // Wire the send side through bridges.
    const NocParams noc = _platform.nocParams();
    for (u32 s = 0; s < _config.systems.size(); ++s) {
        const auto &sys = _config.systems[s];
        for (const auto &pout : sys.intraMemoryOuts) {
            const u32 t = _systemIds.at(pout.toSystem);
            const auto &tsys = _config.systems[t];
            const auto pin_it = std::find_if(
                tsys.intraMemoryIns.begin(), tsys.intraMemoryIns.end(),
                [&](const auto &pin) {
                    return pin.name == pout.toMemoryPort;
                });
            const bool broadcast =
                pin_it->commDeg == CommunicationDegree::Broadcast;
            if (!broadcast && sys.nCores != tsys.nCores) {
                fatal("point-to-point intra-core port '%s': source "
                      "system %s has %u cores but target %s has %u",
                      pout.name.c_str(), sys.name.c_str(), sys.nCores,
                      tsys.name.c_str(), tsys.nCores);
            }
            for (u32 c = 0; c < sys.nCores; ++c) {
                const std::size_t src_flat = sys_offsets[s] + c;
                for (u32 k = 0; k < pout.nChannels; ++k) {
                    // Crossing latency if any target is on another SLR.
                    unsigned latency = 1;
                    auto consider = [&](u32 tc) {
                        if (_coreSlr[t][tc] != _coreSlr[s][c])
                            latency = std::max(
                                latency, noc.slrCrossingLatency);
                    };
                    if (broadcast) {
                        for (u32 tc = 0; tc < tsys.nCores; ++tc)
                            consider(tc);
                    } else {
                        consider(c);
                    }
                    auto bridge = std::make_unique<IntraCoreBridge>(
                        _sim,
                        _contexts[src_flat].name + "." + pout.name +
                            ".ch" + std::to_string(k),
                        latency, broadcast);
                    if (broadcast) {
                        for (u32 tc = 0; tc < tsys.nCores; ++tc) {
                            const std::size_t dst = sys_offsets[t] + tc;
                            bridge->addTarget(
                                &_contexts[dst]
                                     .scratchpads[pout.toMemoryPort]
                                     ->addIntraCoreWritePort());
                        }
                    } else {
                        const std::size_t dst = sys_offsets[t] + c;
                        bridge->addTarget(
                            &_contexts[dst]
                                 .scratchpads[pout.toMemoryPort]
                                 ->addIntraCoreWritePort());
                    }
                    _contexts[src_flat].intraOuts[pout.name].push_back(
                        &bridge->srcQueue());
                    // Bridges live with their source core; _bridges
                    // does not retain placement, so stamp it here.
                    _sim.graphRecord().setShard(
                        bridge.get(), 1 + static_cast<int>(_coreSlr[s][c]));
                    _bridges.push_back(std::move(bridge));
                }
            }
        }
    }
}

void
AcceleratorSoc::buildCores()
{
    for (std::size_t flat = 0; flat < _contexts.size(); ++flat) {
        const CoreContext &ctx = _contexts[flat];
        _cores.push_back(ctx.systemConfig->moduleConstructor(ctx));
        beethoven_assert(_cores.back() != nullptr,
                         "module constructor for %s returned null",
                         ctx.name.c_str());
    }
}

void
AcceleratorSoc::accountInterconnect()
{
    const unsigned fanout = _platform.nocParams().fanout;
    ResourceVec total;
    if (_arTree)
        total += treeResources(_arTree->stats(), 8, fanout);
    if (_rTree)
        total += treeResources(_rTree->stats(), _bus.dataBytes, fanout);
    if (_wTree)
        total += treeResources(_wTree->stats(), _bus.dataBytes, fanout);
    if (_bTree)
        total += treeResources(_bTree->stats(), 2, fanout);
    total += treeResources(_cmdTree->stats(), 20, fanout);
    total += treeResources(_respTree->stats(), 12, fanout);
    total += mmioFrontendResources();
    _interconnectResources = total;

    // Charge interconnect per SLR in proportion to the cores it serves.
    std::vector<double> cores_per_slr(_floorplan->numSlrs(), 0.0);
    double n = 0;
    for (const auto &per_sys : _coreSlr) {
        for (unsigned slr : per_sys) {
            cores_per_slr[slr] += 1.0;
            n += 1.0;
        }
    }
    for (std::size_t slr = 0; slr < cores_per_slr.size(); ++slr) {
        if (n > 0 && cores_per_slr[slr] > 0)
            _floorplan->charge(static_cast<unsigned>(slr),
                               total * (cores_per_slr[slr] / n));
    }
}

void
AcceleratorSoc::checkFit() const
{
    for (unsigned s = 0; s < _floorplan->numSlrs(); ++s) {
        const ResourceVec &used = _floorplan->used(s);
        const ResourceVec avail = _floorplan->slr(s).available();
        if (!used.fitsWithin(avail)) {
            fatal("design does not fit on %s: used {clb=%.0f lut=%.0f "
                  "bram=%.1f uram=%.0f} of {clb=%.0f lut=%.0f "
                  "bram=%.0f uram=%.0f}",
                  _floorplan->slr(s).name.c_str(), used.clb, used.lut,
                  used.bram, used.uram, avail.clb, avail.lut, avail.bram,
                  avail.uram);
        }
    }
}

u32
AcceleratorSoc::systemIdOf(const std::string &system_name) const
{
    auto it = _systemIds.find(system_name);
    if (it == _systemIds.end())
        fatal("unknown system '%s'", system_name.c_str());
    return it->second;
}

const AcceleratorSystemConfig &
AcceleratorSoc::systemConfig(const std::string &system_name) const
{
    return _config.systems[systemIdOf(system_name)];
}

AcceleratorCore &
AcceleratorSoc::core(const std::string &system_name, u32 idx)
{
    const u32 sid = systemIdOf(system_name);
    std::size_t flat = 0;
    for (u32 s = 0; s < sid; ++s)
        flat += _config.systems[s].nCores;
    beethoven_assert(idx < _config.systems[sid].nCores,
                     "core index %u out of range for system %s", idx,
                     system_name.c_str());
    return *_cores[flat + idx];
}

std::vector<unsigned>
AcceleratorSoc::coreSlrs(const std::string &system_name) const
{
    return _coreSlr[systemIdOf(system_name)];
}

ResourceVec
AcceleratorSoc::coreLogicResources(const std::string &system_name) const
{
    return estimateCoreLogic(systemConfig(system_name), _bus);
}

} // namespace beethoven
