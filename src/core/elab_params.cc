#include "core/elab_params.h"

#include <algorithm>

#include "mem/resource_model.h"

namespace beethoven
{

ReaderParams
resolveReaderParams(const ReadChannelConfig &cfg,
                    const Platform &platform)
{
    ReaderParams p;
    p.dataBytes = cfg.dataBytes;
    p.burstBeats =
        cfg.burstBeats ? cfg.burstBeats : platform.defaultBurstBeats();
    p.maxInflight =
        cfg.maxInflight ? cfg.maxInflight : platform.defaultMaxInflight();
    p.useTlp = cfg.useTlp;
    return p;
}

WriterParams
resolveWriterParams(const WriteChannelConfig &cfg,
                    const Platform &platform)
{
    WriterParams p;
    p.dataBytes = cfg.dataBytes;
    p.burstBeats =
        cfg.burstBeats ? cfg.burstBeats : platform.defaultBurstBeats();
    p.maxInflight =
        cfg.maxInflight ? cfg.maxInflight : platform.defaultMaxInflight();
    p.useTlp = cfg.useTlp;
    return p;
}

ReaderParams
spadInitReaderParams(const ScratchpadConfig &cfg,
                     const Platform &platform)
{
    ReaderParams p;
    p.dataBytes = (cfg.dataWidthBits + 7) / 8;
    p.burstBeats = platform.defaultBurstBeats();
    p.maxInflight = platform.defaultMaxInflight();
    p.useTlp = true;
    return p;
}

ResourceVec
estimateCoreLogic(const AcceleratorSystemConfig &sys,
                  const Platform &platform, const AxiConfig &bus)
{
    ResourceVec est = sys.kernelResources;
    if (platform.isAsic()) {
        // On ASIC targets the kernel's FPGA block-RAM estimates map to
        // compiled SRAM macros instead.
        est.sramMacros += est.bram + est.uram;
        est.bram = 0;
        est.uram = 0;
    }
    for (const auto &r : sys.readChannels) {
        est += readerLogicResources(resolveReaderParams(r, platform),
                                    bus) *
               static_cast<double>(r.nChannels);
    }
    for (const auto &w : sys.writeChannels) {
        est += writerLogicResources(resolveWriterParams(w, platform),
                                    bus) *
               static_cast<double>(w.nChannels);
    }
    for (const auto &sp : sys.scratchpads) {
        ScratchpadParams p;
        p.dataWidthBits = sp.dataWidthBits;
        p.nDatas = sp.nDatas;
        p.nPorts = sp.nPorts;
        p.latency = sp.latency;
        p.supportsInit = sp.supportsInit;
        est += scratchpadControlResources(p);
        if (sp.supportsInit) {
            est += readerLogicResources(
                spadInitReaderParams(sp, platform), bus);
        }
    }
    for (const auto &pin : sys.intraMemoryIns) {
        ScratchpadParams p;
        p.dataWidthBits = pin.dataWidthBits;
        p.nDatas = pin.nDatas;
        p.nPorts = std::max(1u, pin.nChannels);
        p.supportsInit = false;
        est += scratchpadControlResources(p);
    }
    return est;
}

} // namespace beethoven
