/**
 * @file
 * Shared config -> elaboration parameter resolution.
 *
 * Channel configs leave zero-valued knobs to "platform default"
 * (Section II-B); both real elaboration (core/soc.cc) and the static
 * composition linter (lint/lint.h) must resolve them identically or
 * the linter would reason about a different design than the one that
 * gets built. These helpers are that single source of truth.
 */

#ifndef BEETHOVEN_CORE_ELAB_PARAMS_H
#define BEETHOVEN_CORE_ELAB_PARAMS_H

#include "core/config.h"
#include "platform/platform.h"

namespace beethoven
{

/** Resolve a ReadChannelConfig's knobs against platform defaults. */
ReaderParams resolveReaderParams(const ReadChannelConfig &cfg,
                                 const Platform &platform);

/** Resolve a WriteChannelConfig's knobs against platform defaults. */
WriterParams resolveWriterParams(const WriteChannelConfig &cfg,
                                 const Platform &platform);

/** Parameters of the hidden init Reader behind a scratchpad. */
ReaderParams spadInitReaderParams(const ScratchpadConfig &cfg,
                                  const Platform &platform);

/**
 * Per-core Beethoven-generated + kernel logic estimate for one system
 * (no memory blocks — those are compiled exactly by the memory
 * compiler during floorplanning).
 */
ResourceVec estimateCoreLogic(const AcceleratorSystemConfig &sys,
                              const Platform &platform,
                              const AxiConfig &bus);

} // namespace beethoven

#endif // BEETHOVEN_CORE_ELAB_PARAMS_H
