#include "core/accelerator_core.h"

#include "base/log.h"
#include "trace/trace.h"

namespace beethoven
{

AcceleratorCore::AcceleratorCore(const CoreContext &ctx)
    : Module(*ctx.sim, ctx.name), _ctx(ctx), _stall(*ctx.sim, ctx.name)
{
    beethoven_assert(_ctx.systemConfig != nullptr,
                     "core %s constructed without a system config",
                     name().c_str());
    declareRole("core");
    for (u32 id = 0; id < _ctx.systemConfig->commands.size(); ++id) {
        _assemblers.emplace(
            id, CommandAssembler(_ctx.systemConfig->commands[id]));
    }
}

AcceleratorCore::~AcceleratorCore() = default;

Reader &
AcceleratorCore::getReaderModule(const std::string &name, unsigned idx)
{
    auto it = _ctx.readers.find(name);
    if (it == _ctx.readers.end())
        fatal("core %s: no read channel named '%s' (check the "
              "ReadChannelConfig list)",
              Module::name().c_str(), name.c_str());
    if (idx >= it->second.size())
        fatal("core %s: read channel '%s' has %zu channels, index %u "
              "requested",
              Module::name().c_str(), name.c_str(), it->second.size(),
              idx);
    return *it->second[idx];
}

Writer &
AcceleratorCore::getWriterModule(const std::string &name, unsigned idx)
{
    auto it = _ctx.writers.find(name);
    if (it == _ctx.writers.end())
        fatal("core %s: no write channel named '%s' (check the "
              "WriteChannelConfig list)",
              Module::name().c_str(), name.c_str());
    if (idx >= it->second.size())
        fatal("core %s: write channel '%s' has %zu channels, index %u "
              "requested",
              Module::name().c_str(), name.c_str(), it->second.size(),
              idx);
    return *it->second[idx];
}

Scratchpad &
AcceleratorCore::getScratchpad(const std::string &name)
{
    auto it = _ctx.scratchpads.find(name);
    if (it == _ctx.scratchpads.end())
        fatal("core %s: no scratchpad named '%s'",
              Module::name().c_str(), name.c_str());
    return *it->second;
}

TimedQueue<SpadRequest> &
AcceleratorCore::getIntraCoreMemOut(const std::string &name,
                                    unsigned channel)
{
    auto it = _ctx.intraOuts.find(name);
    if (it == _ctx.intraOuts.end())
        fatal("core %s: no intra-core out port named '%s'",
              Module::name().c_str(), name.c_str());
    if (channel >= it->second.size())
        fatal("core %s: intra-core out port '%s' has %zu channels",
              Module::name().c_str(), name.c_str(), it->second.size());
    return *it->second[channel];
}

std::optional<DecodedCommand>
AcceleratorCore::pollCommand()
{
    if (_ctx.cmdIn == nullptr || !_ctx.cmdIn->canPop())
        return std::nullopt;
    const RoccCommand beat = _ctx.cmdIn->pop();
    const u32 cmd_id = beat.commandId();
    auto it = _assemblers.find(cmd_id);
    if (it == _assemblers.end()) {
        warn("core %s: dropping beat for undeclared command ID %u",
             name().c_str(), cmd_id);
        return std::nullopt;
    }
    if (!it->second.feed(beat))
        return std::nullopt;
    DecodedCommand cmd;
    cmd.commandId = cmd_id;
    cmd.args = it->second.args();
    cmd.rd = it->second.rd();
    cmd.expectsResponse = it->second.expectsResponse();
    if (sim().trace() != nullptr)
        _execStart[cmd.rd] = sim().cycle();
    return cmd;
}

bool
AcceleratorCore::respond(const DecodedCommand &cmd, u64 data)
{
    beethoven_assert(_ctx.respOut != nullptr,
                     "core %s has no response channel",
                     name().c_str());
    if (!_ctx.respOut->canPush())
        return false;
    RoccResponse resp;
    resp.systemId = _ctx.systemId;
    resp.coreId = _ctx.coreIdx;
    resp.rd = cmd.rd;
    resp.data = data;
    _ctx.respOut->push(resp);
    if (TraceSink *ts = sim().trace()) {
        auto it = _execStart.find(cmd.rd);
        if (it != _execStart.end()) {
            ts->span("cmd", name() + ".exec", name(), it->second,
                     sim().cycle(), {{"commandId", cmd.commandId}});
            _execStart.erase(it);
        }
    }
    return true;
}

} // namespace beethoven
