/**
 * @file
 * Accelerator configuration (Fig. 3a).
 *
 * "Configurations allow the developer to declare memory interfaces for
 * a Core, change the number of Cores in a System, or add new Systems
 * to Beethoven without modifying the functional description of their
 * design."
 *
 * An AcceleratorConfig lists one or more Systems; each System names a
 * core constructor, a core count, its memory channels (Readers /
 * Writers / Scratchpads / intra-core ports) and its command formats.
 * Elaboration (core/soc.h) turns a config plus a Platform into a full
 * simulated SoC.
 */

#ifndef BEETHOVEN_CORE_CONFIG_H
#define BEETHOVEN_CORE_CONFIG_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cmd/command_spec.h"
#include "floorplan/resources.h"
#include "mem/reader.h"
#include "mem/scratchpad.h"
#include "mem/writer.h"

namespace beethoven
{

class AcceleratorCore;
struct CoreContext;

/** ReadChannelConfig (Appendix A). Zero-valued knobs use platform
 *  defaults chosen by the platform developer (Section II-B). */
struct ReadChannelConfig
{
    std::string name;
    unsigned dataBytes = 4;
    unsigned nChannels = 1;
    unsigned burstBeats = 0;  ///< 0 = platform default
    unsigned maxInflight = 0; ///< 0 = platform default
    bool useTlp = true;
};

/** WriteChannelConfig (Appendix A). */
struct WriteChannelConfig
{
    std::string name;
    unsigned dataBytes = 4;
    unsigned nChannels = 1;
    unsigned burstBeats = 0;
    unsigned maxInflight = 0;
    bool useTlp = true;
};

/** ScratchpadConfig (Appendix A). */
struct ScratchpadConfig
{
    std::string name;
    unsigned dataWidthBits = 32;
    unsigned nDatas = 1024;
    unsigned nPorts = 1;
    unsigned latency = 1;
    bool supportsInit = true;
};

/** How intra-core writes fan out across the target system's cores. */
enum class CommunicationDegree {
    PointToPoint, ///< source core i writes target core i's memory
    Broadcast,    ///< every source write lands in all target cores
};

/** IntraCoreMemoryPortInConfig (Appendix A): a scratchpad writable
 *  from other accelerator cores on chip. */
struct IntraCoreMemoryPortInConfig
{
    std::string name;
    unsigned nChannels = 1;
    unsigned dataWidthBits = 32;
    unsigned nDatas = 1024;
    CommunicationDegree commDeg = CommunicationDegree::PointToPoint;
    bool readOnly = false; ///< local core may not write it
    unsigned latency = 2;
};

/** IntraCoreMemoryPortOutConfig (Appendix A). */
struct IntraCoreMemoryPortOutConfig
{
    std::string name;
    std::string toSystem;
    std::string toMemoryPort;
    unsigned nChannels = 1;
};

/**
 * Appendix A's manually-managed on-chip memory: "Declares an on-chip
 * memory that is manually-managed by the programmer. Provides
 * SRAM-like interfaces." Maps the Memory(...) signature onto a
 * Scratchpad with no init path; read and write traffic shares the
 * request ports (write enables are implied by SpadRequest::write).
 */
inline ScratchpadConfig
Memory(std::string name, unsigned latency, unsigned data_width,
       unsigned n_rows, unsigned n_read_ports,
       unsigned n_write_ports = 0, unsigned n_read_write_ports = 0)
{
    ScratchpadConfig cfg;
    cfg.name = std::move(name);
    cfg.dataWidthBits = data_width;
    cfg.nDatas = n_rows;
    cfg.nPorts = std::max(1u, n_read_ports + n_write_ports +
                                  n_read_write_ports);
    cfg.latency = latency;
    cfg.supportsInit = false;
    return cfg;
}

/** Factory invoked once per core instance during elaboration. */
using CoreConstructor =
    std::function<std::unique_ptr<AcceleratorCore>(const CoreContext &)>;

/**
 * One Beethoven System: nCores identical cores sharing a function
 * (Fig. 1). Multiple systems compose a heterogeneous accelerator.
 */
struct AcceleratorSystemConfig
{
    std::string name;
    unsigned nCores = 1;
    CoreConstructor moduleConstructor;

    std::vector<ReadChannelConfig> readChannels;
    std::vector<WriteChannelConfig> writeChannels;
    std::vector<ScratchpadConfig> scratchpads;
    std::vector<IntraCoreMemoryPortInConfig> intraMemoryIns;
    std::vector<IntraCoreMemoryPortOutConfig> intraMemoryOuts;

    /** Command formats (BeethovenIO declarations), indexed by
     *  command ID in declaration order. */
    std::vector<CommandSpec> commands;

    /** Resource estimate of the user's kernel datapath, per core
     *  (Beethoven-generated parts are estimated automatically). */
    ResourceVec kernelResources;
};

/** The whole accelerator (Fig. 3a's AcceleratorConfig). */
struct AcceleratorConfig
{
    std::string name = "BeethovenAccelerator";
    std::vector<AcceleratorSystemConfig> systems;

    AcceleratorConfig() = default;

    /** Convenience single-system constructor matching Fig. 3a. */
    explicit AcceleratorConfig(AcceleratorSystemConfig system)
    {
        name = system.name;
        systems.push_back(std::move(system));
    }
};

} // namespace beethoven

#endif // BEETHOVEN_CORE_CONFIG_H
