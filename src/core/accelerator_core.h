/**
 * @file
 * AcceleratorCore — the base class users derive to implement a Core
 * (Fig. 2's `class MyAccelerator extends AcceleratorCore`).
 *
 * The core is a clocked Module. Elaboration builds the Beethoven-
 * generated surroundings (Readers, Writers, Scratchpads, command and
 * response channels) and hands them to the core through a CoreContext;
 * the core accesses them with the same accessors the paper's Chisel
 * API provides: getReaderModule / getWriterModule / getScratchpad /
 * getIntraCoreMemOut.
 *
 * Command delivery: RoCC beats arrive on the command queue; the base
 * class assembles multi-beat payloads per the System's CommandSpecs
 * and exposes completed commands through pollCommand(). Responses are
 * sent with respond().
 */

#ifndef BEETHOVEN_CORE_ACCELERATOR_CORE_H
#define BEETHOVEN_CORE_ACCELERATOR_CORE_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cmd/command_spec.h"
#include "core/config.h"
#include "mem/reader.h"
#include "mem/scratchpad.h"
#include "mem/writer.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

/** Everything elaboration wires into one core instance. */
struct CoreContext
{
    Simulator *sim = nullptr;
    std::string name;
    u32 systemId = 0;
    u32 coreIdx = 0;
    const AcceleratorSystemConfig *systemConfig = nullptr;

    std::map<std::string, std::vector<Reader *>> readers;
    std::map<std::string, std::vector<Writer *>> writers;
    std::map<std::string, Scratchpad *> scratchpads;
    /** Per out-port name, per channel: queue into the target core. */
    std::map<std::string, std::vector<TimedQueue<SpadRequest> *>>
        intraOuts;

    TimedQueue<RoccCommand> *cmdIn = nullptr;
    TimedQueue<RoccResponse> *respOut = nullptr;
};

/** A fully-assembled command delivered to the core. */
struct DecodedCommand
{
    u32 commandId = 0;
    std::vector<u64> args; ///< field values in CommandSpec order
    u32 rd = 0;            ///< response routing token
    bool expectsResponse = false;
};

class AcceleratorCore : public Module
{
  public:
    explicit AcceleratorCore(const CoreContext &ctx);
    ~AcceleratorCore() override;

    u32 systemId() const { return _ctx.systemId; }
    u32 coreIdx() const { return _ctx.coreIdx; }

    /**
     * Cycles this core classified as Busy via accountCycle. Busy is
     * counted incrementally (only Idle is lazily backfilled), so this
     * is an accurate cumulative activity count mid-run — the power
     * ledger's per-core dynamic-energy source.
     */
    u64 busyCycles() const { return _stall.count(StallClass::Busy); }

  protected:
    /** Fig. 2: getReaderModule("vec_in") — returns the Reader whose
     *  cmdPort/dataPort the core drives. */
    Reader &getReaderModule(const std::string &name, unsigned idx = 0);
    Writer &getWriterModule(const std::string &name, unsigned idx = 0);
    Scratchpad &getScratchpad(const std::string &name);
    TimedQueue<SpadRequest> &getIntraCoreMemOut(const std::string &name,
                                                unsigned channel = 0);

    /**
     * Check for a completed command. Beats of multi-beat commands are
     * consumed across calls; a command is returned exactly once.
     */
    std::optional<DecodedCommand> pollCommand();

    /**
     * Send a completion/response for @p cmd. @return false when the
     * response channel is full (retry next cycle).
     */
    bool respond(const DecodedCommand &cmd, u64 data = 0);

    const CoreContext &context() const { return _ctx; }

    /**
     * Classify the current cycle for stall attribution. Cores that
     * never call it are reported as fully idle (the account backfills
     * Idle on publish), so instrumentation is opt-in per core.
     */
    void accountCycle(StallClass c) { _stall.account(c); }

  private:
    CoreContext _ctx;
    StallAccount _stall;
    std::map<u32, CommandAssembler> _assemblers;
    /** Cycle each in-flight command was delivered, keyed by rd. */
    std::map<u32, Cycle> _execStart;
};

} // namespace beethoven

#endif // BEETHOVEN_CORE_ACCELERATOR_CORE_H
