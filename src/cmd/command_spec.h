/**
 * @file
 * Custom command/response formats (Section II-B, "Command
 * Abstractions").
 *
 * "Beethoven takes developer-defined custom command format for a core
 * and generates a C++ library with the custom command arguments
 * instead of forcing the developer to perform this mapping
 * themselves."
 *
 * A CommandSpec declares the ordered payload fields of an AccelCommand
 * (Fig. 2's BeethovenIO). Fields are packed least-significant-first
 * into the 128 payload bits of successive RoCC beats; the same spec
 * drives the host-side stub (runtime::call / bindgen) and the
 * core-side CommandAssembler, so hardware and software can never skew.
 */

#ifndef BEETHOVEN_CMD_COMMAND_SPEC_H
#define BEETHOVEN_CMD_COMMAND_SPEC_H

#include <string>
#include <vector>

#include "base/bits.h"
#include "cmd/rocc.h"

namespace beethoven
{

/** One payload field of a custom command or response. */
struct CommandField
{
    std::string name;
    unsigned bits = 0;
    bool isAddress = false; ///< declared via Address() in the paper's API

    static CommandField
    uint(std::string name, unsigned bits)
    {
        return CommandField{std::move(name), bits, false};
    }

    /** An accelerator-memory address field (platform address width). */
    static CommandField
    address(std::string name, unsigned addr_bits = 34)
    {
        return CommandField{std::move(name), addr_bits, true};
    }
};

/**
 * A named custom command: payload fields plus (optional) response
 * payload. Response payloads are limited to one 64-bit beat, matching
 * the RoCC writeback register.
 */
class CommandSpec
{
  public:
    CommandSpec() = default;

    /**
     * @param name      binding name (becomes the generated C++ function)
     * @param fields    ordered payload fields (each <= 64 bits)
     * @param resp_bits response payload width (0 = EmptyAccelResponse,
     *                  which still acknowledges completion)
     */
    CommandSpec(std::string name, std::vector<CommandField> fields,
                unsigned resp_bits = 0);

    const std::string &name() const { return _name; }
    const std::vector<CommandField> &fields() const { return _fields; }
    unsigned respBits() const { return _respBits; }

    /** Total payload width in bits. */
    unsigned payloadBits() const;

    /** RoCC beats needed to carry the payload (>= 1). */
    unsigned numBeats() const;

    /**
     * Pack field values (one per declared field, in order) into RoCC
     * beats routed to (system, core) with the given command ID.
     * Every beat expects a response only on the final beat (xd).
     */
    std::vector<RoccCommand> pack(u32 system_id, u32 core_id,
                                  u32 command_id, u32 rd,
                                  const std::vector<u64> &values) const;

    /** Recover field values from a full sequence of beats. */
    std::vector<u64> unpack(const std::vector<RoccCommand> &beats) const;

  private:
    std::string _name;
    std::vector<CommandField> _fields;
    unsigned _respBits = 0;
};

/**
 * Core-side helper that accumulates RoCC beats until a full command
 * payload is present, then exposes the decoded argument values.
 */
class CommandAssembler
{
  public:
    explicit CommandAssembler(const CommandSpec &spec) : _spec(&spec) {}

    /**
     * Feed one beat. @return true when the command is now complete and
     * args() / rd() are valid (resets automatically on the next feed).
     */
    bool feed(const RoccCommand &beat);

    const std::vector<u64> &args() const { return _args; }
    u32 rd() const { return _rd; }
    bool expectsResponse() const { return _xd; }

  private:
    const CommandSpec *_spec;
    std::vector<RoccCommand> _beats;
    std::vector<u64> _args;
    u32 _rd = 0;
    bool _xd = false;
};

} // namespace beethoven

#endif // BEETHOVEN_CMD_COMMAND_SPEC_H
