#include "cmd/rocc.h"

#include "base/bits.h"

namespace beethoven
{

u32
RoccCommand::opcode() const
{
    return static_cast<u32>(bits(inst, 0, 7));
}

u32
RoccCommand::rd() const
{
    return static_cast<u32>(bits(inst, 7, 5));
}

bool
RoccCommand::xd() const
{
    return bits(inst, 12, 1) != 0;
}

u32
RoccCommand::systemId() const
{
    return static_cast<u32>(bits(inst, 28, 4)); // funct7[6:3]
}

u32
RoccCommand::commandId() const
{
    return static_cast<u32>(bits(inst, 25, 3)); // funct7[2:0]
}

u32
RoccCommand::coreId() const
{
    const u32 lo = static_cast<u32>(bits(inst, 15, 5)); // rs1 field
    const u32 hi = static_cast<u32>(bits(inst, 20, 5)); // rs2 field
    return (hi << 5) | lo;
}

void
RoccCommand::setOpcode(u32 v)
{
    inst = static_cast<u32>(insertBits(inst, 0, 7, v));
}

void
RoccCommand::setRd(u32 v)
{
    inst = static_cast<u32>(insertBits(inst, 7, 5, v));
}

void
RoccCommand::setXd(bool v)
{
    inst = static_cast<u32>(insertBits(inst, 12, 1, v ? 1 : 0));
}

void
RoccCommand::setSystemId(u32 v)
{
    inst = static_cast<u32>(insertBits(inst, 28, 4, v));
}

void
RoccCommand::setCommandId(u32 v)
{
    inst = static_cast<u32>(insertBits(inst, 25, 3, v));
}

void
RoccCommand::setCoreId(u32 v)
{
    inst = static_cast<u32>(insertBits(inst, 15, 5, v & 0x1F));
    inst = static_cast<u32>(insertBits(inst, 20, 5, (v >> 5) & 0x1F));
}

} // namespace beethoven
