/**
 * @file
 * The MMIO Command/Response System (Fig. 1a).
 *
 * "Commands are sent from the host to the accelerator over a
 * Memory-Mapped IO (MMIO) interface to the MMIO Command/Response
 * System, which converts the system bus protocol into RoCC
 * instructions."
 *
 * The register map is 32-bit, matching a typical AXI-Lite window:
 *
 *   0x00  CMD_BITS    W   five writes stage one 160-bit RoCC beat
 *                         (inst, rs1.lo, rs1.hi, rs2.lo, rs2.hi)
 *   0x04  CMD_VALID   W   submit the staged beat into the fabric
 *   0x08  CMD_READY   R   1 when a staged beat would be accepted
 *   0x0C  RESP_BITS   R   three reads drain one response
 *                         (data.lo, data.hi, routing word)
 *   0x10  RESP_VALID  R   1 when a response is waiting
 *   0x14  RESP_READY  W   pop the current response
 *
 * Host-side access latency is modeled by the runtime's HostInterface
 * (PCIe-scale on discrete platforms); this module is the device side.
 */

#ifndef BEETHOVEN_CMD_MMIO_H
#define BEETHOVEN_CMD_MMIO_H

#include <array>
#include <functional>
#include <map>

#include "base/stats.h"
#include "cmd/rocc.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

/** MMIO register offsets. */
namespace mmio_regs
{
constexpr u32 cmdBits = 0x00;
constexpr u32 cmdValid = 0x04;
constexpr u32 cmdReady = 0x08;
constexpr u32 respBits = 0x0C;
constexpr u32 respValid = 0x10;
constexpr u32 respReady = 0x14;
} // namespace mmio_regs

class MmioCommandSystem : public Module
{
  public:
    MmioCommandSystem(Simulator &sim, std::string name,
                      std::size_t queue_depth = 4);

    /** Fabric side: command beats out, response beats in. */
    TimedQueue<RoccCommand> &cmdOut() { return _cmdOut; }
    TimedQueue<RoccResponse> &respIn() { return _respIn; }

    /**
     * Device-side register access, invoked by the HostInterface at the
     * modeled completion time of each MMIO operation.
     */
    void write32(u32 offset, u32 value);
    u32 read32(u32 offset) const;

    void tick() override;

    /**
     * Observer hooks for the verification layer: fire when a command
     * beat enters the fabric / a response beat is drained from it.
     * Single-subscriber (last setter wins); pass nullptr to detach.
     */
    void onCommand(std::function<void(const RoccCommand &)> fn)
    {
        _cmdObserver = std::move(fn);
    }

    void onResponse(std::function<void(const RoccResponse &)> fn)
    {
        _respObserver = std::move(fn);
    }

    /** Cumulative command beats submitted + responses drained. */
    u64 transactions() const { return _transactions; }

  private:
    TimedQueue<RoccCommand> _cmdOut;
    TimedQueue<RoccResponse> _respIn;

    std::array<u32, 5> _stage{};
    unsigned _stageCount = 0;
    bool _submitPending = false;

    bool _respHeld = false;
    RoccResponse _respReg;
    mutable unsigned _respReadIdx = 0;

    /**
     * Dispatch cycle of each in-flight command, keyed by its response
     * routing word (systemId, coreId, rd) — the same key the runtime
     * uses to match responses. Commands are MMIO-paced, so this map
     * stays small. Feeds the dispatch->completion span and the
     * cmdLatency histogram.
     */
    std::map<u64, Cycle> _cmdStart;
    u64 _transactions = 0;
    StatHistogram *_cmdLatency;
    StallAccount _stall;

    std::function<void(const RoccCommand &)> _cmdObserver;
    std::function<void(const RoccResponse &)> _respObserver;
};

} // namespace beethoven

#endif // BEETHOVEN_CMD_MMIO_H
