#include "cmd/command_spec.h"

#include "base/log.h"

namespace beethoven
{

CommandSpec::CommandSpec(std::string name,
                         std::vector<CommandField> fields,
                         unsigned resp_bits)
    : _name(std::move(name)), _fields(std::move(fields)),
      _respBits(resp_bits)
{
    if (_name.empty())
        fatal("command spec with empty name");
    for (const auto &f : _fields) {
        if (f.bits == 0 || f.bits > 64) {
            fatal("command %s: field %s width %u outside [1, 64]",
                  _name.c_str(), f.name.c_str(), f.bits);
        }
    }
    if (_respBits > 64) {
        fatal("command %s: response width %u exceeds the 64-bit RoCC "
              "writeback register",
              _name.c_str(), _respBits);
    }
}

unsigned
CommandSpec::payloadBits() const
{
    unsigned total = 0;
    for (const auto &f : _fields)
        total += f.bits;
    return total;
}

unsigned
CommandSpec::numBeats() const
{
    const unsigned payload = payloadBits();
    if (payload == 0)
        return 1;
    return static_cast<unsigned>(
        divCeil(payload, RoccCommand::payloadBitsPerBeat));
}

std::vector<RoccCommand>
CommandSpec::pack(u32 system_id, u32 core_id, u32 command_id, u32 rd,
                  const std::vector<u64> &values) const
{
    if (values.size() != _fields.size()) {
        fatal("command %s: %zu values for %zu fields", _name.c_str(),
              values.size(), _fields.size());
    }
    if (system_id >= RoccCommand::maxSystems)
        fatal("system ID %u out of range", system_id);
    if (command_id >= RoccCommand::maxCommands)
        fatal("command ID %u out of range", command_id);
    if (core_id >= RoccCommand::maxCores)
        fatal("core ID %u out of range", core_id);

    // Flatten fields into a contiguous payload bit vector.
    BitVector payload(numBeats() * RoccCommand::payloadBitsPerBeat);
    std::size_t offset = 0;
    for (std::size_t i = 0; i < _fields.size(); ++i) {
        const CommandField &f = _fields[i];
        if (f.bits < 64 && (values[i] & ~mask(f.bits)) != 0) {
            fatal("command %s: value 0x%llx overflows %u-bit field %s",
                  _name.c_str(),
                  static_cast<unsigned long long>(values[i]), f.bits,
                  f.name.c_str());
        }
        payload.setBits(offset, f.bits, values[i]);
        offset += f.bits;
    }

    std::vector<RoccCommand> beats(numBeats());
    for (std::size_t b = 0; b < beats.size(); ++b) {
        RoccCommand &beat = beats[b];
        beat.setOpcode(RoccCommand::customOpcode);
        beat.setSystemId(system_id);
        beat.setCommandId(command_id);
        beat.setCoreId(core_id);
        beat.setRd(rd);
        // Only the final beat signals completion/response expectation.
        beat.setXd(b + 1 == beats.size());
        beat.rs1 = payload.word(2 * b);
        beat.rs2 = payload.word(2 * b + 1);
    }
    return beats;
}

std::vector<u64>
CommandSpec::unpack(const std::vector<RoccCommand> &beats) const
{
    beethoven_assert(beats.size() == numBeats(),
                     "command %s: %zu beats, expected %u", _name.c_str(),
                     beats.size(), numBeats());
    BitVector payload(numBeats() * RoccCommand::payloadBitsPerBeat);
    for (std::size_t b = 0; b < beats.size(); ++b) {
        payload.setWord(2 * b, beats[b].rs1);
        payload.setWord(2 * b + 1, beats[b].rs2);
    }
    std::vector<u64> values;
    values.reserve(_fields.size());
    std::size_t offset = 0;
    for (const auto &f : _fields) {
        values.push_back(payload.getBits(offset, f.bits));
        offset += f.bits;
    }
    return values;
}

bool
CommandAssembler::feed(const RoccCommand &beat)
{
    if (!_args.empty()) {
        // Previous command consumed; start fresh.
        _args.clear();
        _beats.clear();
    }
    _beats.push_back(beat);
    if (_beats.size() < _spec->numBeats())
        return false;
    _args = _spec->unpack(_beats);
    _rd = _beats.back().rd();
    _xd = _beats.back().xd();
    _beats.clear();
    return true;
}

} // namespace beethoven
