/**
 * @file
 * RoCC instruction format (Section II-A).
 *
 * "The commands are communicated using the Rocket Custom Co-processor
 * (RoCC) instruction format — an extension to the RISC-V ISA for
 * accelerators developed by the RocketChip project. Instructions
 * contain routing information specifying its intended Core and System."
 *
 * One RoCC command beat is 160 bits: a 32-bit instruction word plus two
 * 64-bit source registers. Field packing of the instruction word
 * follows the RISC-V R-format used by RoCC:
 *
 *   [6:0]   opcode   (custom-0 = 0x0B)
 *   [11:7]  rd       (response routing token)
 *   [12]    xd       (1 = a response is expected)
 *   [13]    xs1      (rs1 payload valid)
 *   [14]    xs2      (rs2 payload valid)
 *   [19:15] rs1      (low 5 bits of the target core index)
 *   [24:20] rs2      (high 5 bits of the target core index)
 *   [31:25] funct7   (top 4 bits: system ID, low 3 bits: command ID)
 *
 * Beethoven stamps the System/Core routing into funct7/rs1/rs2 so the
 * fabric can route beats without understanding custom payloads.
 */

#ifndef BEETHOVEN_CMD_ROCC_H
#define BEETHOVEN_CMD_ROCC_H

#include "base/types.h"

namespace beethoven
{

/** One 160-bit RoCC command beat. */
struct RoccCommand
{
    u32 inst = 0;
    u64 rs1 = 0;
    u64 rs2 = 0;

    static constexpr u32 customOpcode = 0x0B;
    static constexpr unsigned payloadBitsPerBeat = 128;
    static constexpr unsigned maxSystems = 16;  ///< 4-bit system ID
    static constexpr unsigned maxCommands = 8;  ///< 3-bit command ID
    static constexpr unsigned maxCores = 1024;  ///< 10-bit core index

    u32 opcode() const;
    u32 rd() const;
    bool xd() const;
    u32 systemId() const;
    u32 commandId() const;
    u32 coreId() const;

    void setOpcode(u32 v);
    void setRd(u32 v);
    void setXd(bool v);
    void setSystemId(u32 v);
    void setCommandId(u32 v);
    void setCoreId(u32 v);
};

/** A response beat traveling back to the MMIO front-end. */
struct RoccResponse
{
    u32 systemId = 0;
    u32 coreId = 0;
    u32 rd = 0;
    u64 data = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_CMD_ROCC_H
