#include "cmd/mmio.h"

#include "base/log.h"
#include "trace/trace.h"

namespace beethoven
{

namespace
{

/** Response routing word: the key responses are matched on. */
u64
routingKey(u32 system_id, u32 core_id, u32 rd)
{
    return (u64(system_id) << 16) | (u64(core_id) << 5) | rd;
}

} // namespace

MmioCommandSystem::MmioCommandSystem(Simulator &sim, std::string name,
                                     std::size_t queue_depth)
    : Module(sim, std::move(name)),
      _cmdOut(sim, queue_depth),
      _respIn(sim, queue_depth),
      _stall(sim, Module::name())
{
    StatHistogram &h =
        sim.stats().group(Module::name()).histogram("cmdLatency");
    h.configure(64, 16.0);
    _cmdLatency = &h;
    declareRole("mmio");
    declareSleepable();
    _cmdOut.setWakeOnPop(this);
    _respIn.setWakeOnPush(this);
}

void
MmioCommandSystem::write32(u32 offset, u32 value)
{
    // Register writes arrive from the HostInterface outside our own
    // tick; they are the wake event for a quiescent command system.
    sim().wakeNow(this);
    switch (offset) {
      case mmio_regs::cmdBits:
        if (_stageCount < _stage.size())
            _stage[_stageCount++] = value;
        else
            warn("%s: CMD_BITS write overrun dropped", name().c_str());
        break;
      case mmio_regs::cmdValid:
        if (value != 0) {
            if (_stageCount != _stage.size()) {
                warn("%s: CMD_VALID with %u/5 words staged; dropped",
                     name().c_str(), _stageCount);
                _stageCount = 0;
                break;
            }
            _submitPending = true;
        }
        break;
      case mmio_regs::respReady:
        if (value != 0 && _respHeld) {
            _respHeld = false;
            _respReadIdx = 0;
        }
        break;
      default:
        warn("%s: write to unmapped MMIO offset 0x%x", name().c_str(),
             offset);
    }
}

u32
MmioCommandSystem::read32(u32 offset) const
{
    switch (offset) {
      case mmio_regs::cmdReady:
        return (!_submitPending && _cmdOut.canPush()) ? 1 : 0;
      case mmio_regs::respValid:
        return _respHeld ? 1 : 0;
      case mmio_regs::respBits: {
        if (!_respHeld)
            return 0;
        const unsigned idx = _respReadIdx;
        _respReadIdx = (_respReadIdx + 1) % 3;
        switch (idx) {
          case 0: return static_cast<u32>(_respReg.data);
          case 1: return static_cast<u32>(_respReg.data >> 32);
          default:
            return (_respReg.systemId << 16) | (_respReg.coreId << 5) |
                   _respReg.rd;
        }
      }
      default:
        warn("%s: read from unmapped MMIO offset 0x%x", name().c_str(),
             offset);
        return 0;
    }
}

void
MmioCommandSystem::tick()
{
    bool did = false;
    if (_submitPending && _cmdOut.canPush()) {
        did = true;
        RoccCommand beat;
        beat.inst = _stage[0];
        beat.rs1 = u64(_stage[1]) | (u64(_stage[2]) << 32);
        beat.rs2 = u64(_stage[3]) | (u64(_stage[4]) << 32);
        _cmdOut.push(beat);
        ++_transactions;
        if (_cmdObserver)
            _cmdObserver(beat);
        // First beat of a command opens its latency window; later
        // beats of the same command reuse the recorded cycle.
        _cmdStart.emplace(
            routingKey(beat.systemId(), beat.coreId(), beat.rd()),
            sim().cycle());
        _stageCount = 0;
        _submitPending = false;
    }
    if (!_respHeld && _respIn.canPop()) {
        did = true;
        _respReg = _respIn.pop();
        _respHeld = true;
        ++_transactions;
        _respReadIdx = 0;
        if (_respObserver)
            _respObserver(_respReg);
        const u64 key =
            routingKey(_respReg.systemId, _respReg.coreId, _respReg.rd);
        auto it = _cmdStart.find(key);
        if (it != _cmdStart.end()) {
            const Cycle begin = it->second;
            const Cycle end = sim().cycle();
            _cmdLatency->sample(static_cast<double>(end - begin));
            if (TraceSink *ts = sim().trace()) {
                ts->span("cmd", "cmd",
                         "cmd.s" + std::to_string(_respReg.systemId) +
                             ".c" + std::to_string(_respReg.coreId),
                         begin, end,
                         {{"rd", _respReg.rd},
                          {"data", _respReg.data}});
            }
            _cmdStart.erase(it);
        }
    }
    if (did) {
        _stall.account(StallClass::Busy);
        return;
    }
    // Nothing moved: every way forward is a register write (wakeNow
    // from write32), a response arriving on _respIn, or space freeing
    // in _cmdOut — all wired wake events, so quiesce until one fires.
    StallClass c = StallClass::StallCmd;
    if (_submitPending || _respHeld)
        c = StallClass::StallDownstream;
    else if (!_cmdStart.empty())
        c = StallClass::StallUpstream;
    _stall.account(c);
    sleepWith(_stall, c);
}

} // namespace beethoven
