/**
 * @file
 * Base classes for the cycle-level simulation kernel.
 *
 * The kernel substitutes for RTL simulation of the elaborated Beethoven
 * SoC (the paper uses Verilator/VCS; see DESIGN.md). Hardware is
 * modeled as Modules connected by TimedQueues. Each simulated cycle has
 * two phases:
 *
 *   1. tick():   every module observes the *committed* state of its
 *                input queues and stages pushes onto its outputs;
 *   2. commit(): every queue publishes staged pushes and forgives the
 *                space freed by this cycle's pops.
 *
 * Because staged pushes and freed space only become visible at commit,
 * simulation results are independent of module tick order — the same
 * determinism a synchronous netlist provides.
 */

#ifndef BEETHOVEN_SIM_MODULE_H
#define BEETHOVEN_SIM_MODULE_H

#include <source_location>
#include <string>

#include "base/types.h"

namespace beethoven
{

class Simulator;
class StallAccount;
class ParallelRuntime;
enum class StallClass : unsigned char;

class Module;

/**
 * Barrier-time services the parallel kernel offers a split-mode queue
 * while it drains the queue's epoch mailbox (src/sim/parallel.h). All
 * calls happen on the coordinator thread with every worker parked.
 */
class SplitDrainHost
{
  public:
    virtual ~SplitDrainHost() = default;

    /** The epoch boundary being committed (the next epoch's start). */
    virtual Cycle barrierCycle() const = 0;

    /**
     * Wake @p m at cycle @p at (>= barrierCycle()): immediately when
     * @p at is the barrier cycle itself, else via @p m's group wheel.
     */
    virtual void armWake(Module *m, Cycle at) = 0;

    /**
     * Report the queue's free space as of this barrier. The next
     * epoch's length is capped to the minimum slack over all split
     * queues, so a producer can never observe a stale "full" (or miss
     * a real one) between barriers.
     */
    virtual void noteSlack(std::size_t slack) = 0;
};

/** Anything with per-cycle end-of-cycle state publication. */
class Committable
{
  public:
    virtual ~Committable() = default;

    /** Publish state staged during this cycle's tick phase. */
    virtual void commit() = 0;

    /**
     * Switch this committable into cross-group split mode (parallel
     * kernel): pushes stage into an epoch mailbox on the producer's
     * thread, pops run against delivered entries on the consumer's
     * thread, and the coordinator exchanges both at barriers via
     * drainSplit(). @return false when unsupported (the parallel
     * kernel then refuses to elaborate).
     */
    virtual bool enterSplitMode() { return false; }

    /** Barrier-time mailbox exchange; see SplitDrainHost. */
    virtual void drainSplit(SplitDrainHost &) {}
};

/**
 * A clocked hardware module.
 *
 * Construction registers the module with its Simulator; the owner
 * (normally the elaborated SoC) controls lifetime and must outlive the
 * Simulator's use of it.
 */
class Module
{
  public:
    Module(Simulator &sim, std::string name);
    virtual ~Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Evaluate one cycle of sequential behaviour. */
    virtual void tick() = 0;

    const std::string &name() const { return _name; }

    Simulator &sim() const { return _sim; }

    /** Registration order; also the tick order within a cycle. */
    std::size_t index() const { return _index; }

    /** False while quiescent under the event kernel. */
    bool awake() const { return _awake; }

  protected:
    /**
     * Declare quiescence: under the event kernel the module is not
     * ticked again until a wake arrives (a counterparty queue event,
     * requestWakeAt, or an external wakeNow). No-op under the tick
     * kernel. Call only when the next tick would provably change no
     * state — every input empty, every pending output event armed.
     */
    void requestSleep();

    /** Arm a self-wake at cycle @p at (e.g. DRAM refresh timing). */
    void requestWakeAt(Cycle at);

    /**
     * Sleep and tell @p acct to backfill the quiescent gap with
     * @p gap_class instead of Idle, so the published stall taxonomy is
     * bit-identical to the tick kernel's (which would have classified
     * every slept cycle as @p gap_class). No-op under the tick kernel.
     */
    void sleepWith(StallAccount &acct, StallClass gap_class);

    /**
     * Declare (in the simulator's graph record) that this module may
     * sleep. The static analyzer uses the declaration to demand a
     * reachable wake source (BTH100/BTH102, DESIGN.md §5d); the first
     * requestSleep/sleepWith asserts it was made, so declaration and
     * behaviour cannot skew. Call once from the constructor.
     */
    void declareSleepable(
        std::source_location loc = std::source_location::current());

    /**
     * Declare that this module self-arms wakes via requestWakeAt
     * (e.g. DRAM refresh). The analyzer pairs the declaration with a
     * sleep site (BTH103); requestWakeAt asserts it was made.
     */
    void declareSelfWake(
        std::source_location loc = std::source_location::current());

    /**
     * Name this module's structural role ("reader", "noc-mux", ...)
     * for the analyzer's census against the composition model
     * (BTH106). Undeclared modules keep the ignored default "module".
     */
    void declareRole(const char *role);

  private:
    friend class Simulator;
    friend class ParallelRuntime;

    Simulator &_sim;
    std::string _name;
    std::size_t _index = 0;
    bool _awake = true;
    /** Dedup guard: last wheel cycle a wake was armed for (0 = none). */
    Cycle _lastScheduledWake = 0;
    bool _sleepDeclared = false;
    bool _selfWakeDeclared = false;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_MODULE_H
