/**
 * @file
 * Base classes for the cycle-level simulation kernel.
 *
 * The kernel substitutes for RTL simulation of the elaborated Beethoven
 * SoC (the paper uses Verilator/VCS; see DESIGN.md). Hardware is
 * modeled as Modules connected by TimedQueues. Each simulated cycle has
 * two phases:
 *
 *   1. tick():   every module observes the *committed* state of its
 *                input queues and stages pushes onto its outputs;
 *   2. commit(): every queue publishes staged pushes and forgives the
 *                space freed by this cycle's pops.
 *
 * Because staged pushes and freed space only become visible at commit,
 * simulation results are independent of module tick order — the same
 * determinism a synchronous netlist provides.
 */

#ifndef BEETHOVEN_SIM_MODULE_H
#define BEETHOVEN_SIM_MODULE_H

#include <string>

namespace beethoven
{

class Simulator;

/** Anything with per-cycle end-of-cycle state publication. */
class Committable
{
  public:
    virtual ~Committable() = default;

    /** Publish state staged during this cycle's tick phase. */
    virtual void commit() = 0;
};

/**
 * A clocked hardware module.
 *
 * Construction registers the module with its Simulator; the owner
 * (normally the elaborated SoC) controls lifetime and must outlive the
 * Simulator's use of it.
 */
class Module
{
  public:
    Module(Simulator &sim, std::string name);
    virtual ~Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Evaluate one cycle of sequential behaviour. */
    virtual void tick() = 0;

    const std::string &name() const { return _name; }

    Simulator &sim() const { return _sim; }

  private:
    Simulator &_sim;
    std::string _name;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_MODULE_H
