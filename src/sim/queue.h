/**
 * @file
 * TimedQueue — the decoupled (valid/ready) channel primitive.
 *
 * Semantics match a synchronous hardware FIFO (Chisel's Queue with
 * flow=false, pipe=false):
 *
 *  - an entry pushed during cycle C becomes poppable at cycle C+latency
 *    (latency >= 1; larger values model pipelined links, e.g. the extra
 *    buffering Beethoven inserts on SLR crossings);
 *  - space freed by a pop during cycle C is visible to producers at
 *    cycle C+1 (registered occupancy);
 *  - at most `capacity` entries are in flight at once.
 *
 * Both rules make the observable state a function of the previous
 * cycle's commits only, so module tick order cannot change results.
 */

#ifndef BEETHOVEN_SIM_QUEUE_H
#define BEETHOVEN_SIM_QUEUE_H

#include <deque>
#include <source_location>
#include <utility>
#include <vector>

#include "base/log.h"
#include "base/types.h"
#include "sim/graph_record.h"
#include "sim/simulator.h"

namespace beethoven
{

template <typename T>
class TimedQueue : public Committable
{
  public:
    /**
     * @param sim       owning simulator (for cycle time and commits)
     * @param capacity  maximum in-flight entries (>= 1)
     * @param latency   cycles from push to pop visibility (>= 1)
     */
    TimedQueue(Simulator &sim, std::size_t capacity, unsigned latency = 1,
               std::source_location loc = std::source_location::current())
        : _sim(sim), _capacity(capacity), _latency(latency)
    {
        beethoven_assert(capacity >= 1, "queue capacity must be >= 1");
        beethoven_assert(latency >= 1, "queue latency must be >= 1");
        sim.registerCommittable(this);
        sim.graphRecord().registerQueue(this, capacity, latency,
                                        loc);
    }

    /**
     * Event-kernel wake wiring: wake @p consumer whenever an entry is
     * pushed. Pushes wake twice — immediately (staged occupancy is
     * visible to later-ticking modules this cycle) and at push
     * visibility (cycle + latency, when the entry becomes poppable) —
     * so a consumer that wakes early, finds nothing poppable, and
     * re-sleeps is still re-armed for the beat's arrival.
     */
    void
    setWakeOnPush(Module *consumer,
                  std::source_location loc = std::source_location::current())
    {
        // The plant (soc_fuzz --plant-wake-violation) records the
        // consumer declaration but skips arming — exactly the lost-wake
        // bug class BTH100 exists to catch.
        const bool planted = consumePlantMissingPushWake();
        if (!planted)
            _wakeOnPush = consumer;
        _sim.graphRecord().recordPushWake(this, consumer, !planted,
                                          loc);
    }

    /**
     * Wake @p producer whenever an entry is popped. Occupancy is
     * registered (freed space appears at cycle + 1), so the wake is
     * armed for the next cycle regardless of tick order.
     */
    void
    setWakeOnPop(Module *producer,
                 std::source_location loc = std::source_location::current())
    {
        _wakeOnPop = producer;
        _sim.graphRecord().recordPopWake(this, producer, true,
                                         loc);
    }

    /**
     * Record-only consumer declaration for the analyzer: the consumer
     * polls this queue every tick and needs no push wake (it never
     * sleeps, or another armed source covers it).
     */
    void
    declareConsumer(Module *consumer,
                    std::source_location loc = std::source_location::current())
    {
        _sim.graphRecord().declareConsumer(this, consumer,
                                           loc);
    }

    /** Record-only producer declaration for the analyzer. */
    void
    declareProducer(Module *producer,
                    std::source_location loc = std::source_location::current())
    {
        _sim.graphRecord().declareProducer(this, producer,
                                           loc);
    }

    /** True if a push this cycle would be accepted. */
    bool
    canPush() const
    {
        return occupancy() < _capacity;
    }

    /** Stage a push; visible to the consumer after `latency` commits. */
    void
    push(T value)
    {
        beethoven_assert(canPush(), "push to full queue");
        if (_split) {
            // Cross-group epoch mailbox (parallel kernel): the push is
            // held on the producer's thread, stamped with its cycle,
            // and delivered by the coordinator at the next barrier with
            // the same push-cycle + latency visibility the serial
            // commit would have produced. The producer-side mirror
            // occupancy grows immediately, exactly like a staged
            // _pending entry would under occupancy().
            const Cycle now = _sim.cycle();
            beethoven_assert(_mailbox.empty() ||
                                 _mailbox.back().pushedAt != now,
                             "split queue pushed twice in one cycle: "
                             "epoch slack accounting assumes <= 1 "
                             "push per cycle");
            _mailbox.push_back(MailboxEntry{now, std::move(value)});
            ++_mirror;
            return;
        }
        _pending.push_back(std::move(value));
        if (_wakeOnPush != nullptr) {
            _sim.wakeNow(_wakeOnPush);
            _sim.wakeAt(_wakeOnPush, _sim.cycle() + _latency);
        }
        markDirty();
    }

    /** True if front() / pop() are legal this cycle. */
    bool
    canPop() const
    {
        return !_entries.empty() &&
               _entries.front().readyAt <= _sim.cycle();
    }

    bool empty() const { return !canPop(); }

    /** Reference to the oldest visible entry. */
    const T &
    front() const
    {
        beethoven_assert(canPop(), "front() on empty queue");
        return _entries.front().value;
    }

    /** Remove and return the oldest visible entry. */
    T
    pop()
    {
        beethoven_assert(canPop(), "pop() on empty queue");
        T v = std::move(_entries.front().value);
        _entries.pop_front();
        if (_split) {
            // Pop credits cross back to the producer's mirror at the
            // barrier; the epoch length is slack-capped so the delay
            // can never turn into a falsely-full canPush().
            ++_popsThisEpoch;
            return v;
        }
        ++_popsThisCycle;
        if (_wakeOnPop != nullptr)
            _sim.wakeAt(_wakeOnPop, _sim.cycle() + 1);
        markDirty();
        return v;
    }

    /** Entries currently occupying space (committed + staged). */
    std::size_t
    occupancy() const
    {
        if (_split) {
            // Producer-side view: committed entries as of the last
            // barrier plus this epoch's own pushes. Consumers of a
            // split queue must not read occupancy mid-epoch (none in
            // the tree/core fabric do); at barriers both views agree.
            return _mirror;
        }
        return _entries.size() + _pending.size() + _popsThisCycle;
    }

    std::size_t capacity() const { return _capacity; }
    unsigned latency() const { return _latency; }

    /** Number of entries poppable this cycle. */
    std::size_t
    visibleSize() const
    {
        std::size_t n = 0;
        for (const auto &e : _entries) {
            if (e.readyAt > _sim.cycle())
                break;
            ++n;
        }
        return n;
    }

    void
    commit() override
    {
        // Pushes staged during cycle C commit as C completes and become
        // visible once the simulator reaches C + latency.
        const Cycle ready_at = _sim.cycle() + _latency;
        for (auto &v : _pending)
            _entries.push_back(Entry{ready_at, std::move(v)});
        _pending.clear();
        _popsThisCycle = 0;
        _dirty = false;
    }

    bool
    enterSplitMode() override
    {
        beethoven_assert(_pending.empty() && _popsThisCycle == 0,
                         "split-mode entry with staged queue state");
        // Seed the producer mirror with the committed occupancy.
        _mirror = _entries.size();
        _split = true;
        return true;
    }

    void
    drainSplit(SplitDrainHost &host) override
    {
        const Cycle barrier = host.barrierCycle();
        for (MailboxEntry &e : _mailbox) {
            // Identical visibility to the serial commit: pushed at C,
            // poppable at C + latency. Epochs never exceed the minimum
            // cross-group latency, so C + latency >= barrier and the
            // consumer cannot have missed it.
            const Cycle ready_at = e.pushedAt + _latency;
            beethoven_assert(ready_at >= barrier,
                             "split push delivered late (epoch longer "
                             "than queue latency)");
            _entries.push_back(Entry{ready_at, std::move(e.value)});
            if (_wakeOnPush != nullptr)
                host.armWake(_wakeOnPush, ready_at);
        }
        _mailbox.clear();
        if (_popsThisEpoch != 0) {
            beethoven_assert(_mirror >= _popsThisEpoch,
                             "split queue popped more than it held");
            _mirror -= _popsThisEpoch;
            _popsThisEpoch = 0;
            // The serial kernel wakes the producer at pop-cycle + 1;
            // that cycle is at or before the barrier, and a blocked
            // producer only ever needs the wake once space is visible
            // to it — which is exactly now.
            if (_wakeOnPop != nullptr)
                host.armWake(_wakeOnPop, barrier);
        }
        beethoven_assert(_mirror == _entries.size(),
                         "split mirror out of sync at barrier");
        host.noteSlack(_capacity - std::min(_capacity, _mirror));
    }

  private:
    struct Entry
    {
        Cycle readyAt;
        T value;
    };

    /** One cross-group push parked until the next barrier. */
    struct MailboxEntry
    {
        Cycle pushedAt;
        T value;
    };

    /** First push/pop of the cycle enrols this queue for commit. */
    void
    markDirty()
    {
        if (!_dirty && _sim.eventKernel()) {
            _dirty = true;
            _sim.markDirty(this);
        }
    }

    Simulator &_sim;
    std::size_t _capacity;
    unsigned _latency;
    std::deque<Entry> _entries;
    std::vector<T> _pending;
    std::size_t _popsThisCycle = 0;
    Module *_wakeOnPush = nullptr;
    Module *_wakeOnPop = nullptr;
    bool _dirty = false;

    // Cross-group split mode (parallel kernel). During an epoch the
    // producer thread touches only {_mailbox, _mirror}, the consumer
    // thread only {_entries, _popsThisEpoch}; the coordinator exchanges
    // them in drainSplit() while both are parked at the barrier.
    bool _split = false;
    std::vector<MailboxEntry> _mailbox;
    std::size_t _mirror = 0;
    std::size_t _popsThisEpoch = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_QUEUE_H
