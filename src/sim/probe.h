/**
 * @file
 * Signal probing for the Simulation platform (Section II-D:
 * "Beethoven provides a simulation platform for debugging and
 * performance prediction").
 *
 * A ProbeSet samples named signals (arbitrary double-valued lambdas —
 * queue occupancies, state-machine states, counters) every N cycles,
 * keeps the traces in memory, and can render them as CSV (for offline
 * waveform tooling) or as inline ASCII sparklines for quick looks at
 * utilization over time.
 */

#ifndef BEETHOVEN_SIM_PROBE_H
#define BEETHOVEN_SIM_PROBE_H

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/module.h"
#include "sim/simulator.h"

namespace beethoven
{

class ProbeSet : public Module
{
  public:
    using Signal = std::function<double()>;

    /**
     * @param period  cycles between samples (>= 1)
     */
    ProbeSet(Simulator &sim, std::string name, Cycle period = 1);

    /** Register a named signal; sampled on every period boundary. */
    void add(std::string signal_name, Signal signal);

    std::size_t numSignals() const { return _signals.size(); }
    std::size_t numSamples() const { return _sampleCycles.size(); }

    /** The recorded trace of signal @p idx. */
    const std::vector<double> &trace(std::size_t idx) const;

    /**
     * Emit a "# period=<N>" comment line, then "cycle,sig1,sig2,..."
     * rows. Signal names containing commas, quotes, or newlines are
     * CSV-quoted (embedded quotes doubled) so the header stays
     * machine-parseable.
     */
    void writeCsv(std::ostream &os) const;

    Cycle period() const { return _period; }

    /**
     * Render one sparkline row per signal, min-max normalized over the
     * recorded window.
     */
    void renderSparklines(std::ostream &os, unsigned width = 72) const;

    /** Drop all recorded samples (keep the signal list). */
    void clear();

    void tick() override;

  private:
    struct Entry
    {
        std::string name;
        Signal signal;
        std::vector<double> samples;
    };

    Cycle _period;
    std::vector<Entry> _signals;
    std::vector<Cycle> _sampleCycles;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_PROBE_H
