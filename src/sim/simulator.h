/**
 * @file
 * The cycle-driven simulator that clocks an elaborated Beethoven SoC.
 */

#ifndef BEETHOVEN_SIM_SIMULATOR_H
#define BEETHOVEN_SIM_SIMULATOR_H

#include <functional>
#include <vector>

#include "base/stats.h"
#include "base/types.h"
#include "sim/module.h"

namespace beethoven
{

class TraceSink;

/**
 * Clocks registered Modules and commits registered Committables.
 *
 * The simulator holds non-owning pointers; the elaborated SoC owns all
 * modules and queues and must outlive simulation.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a module for ticking (called by Module's constructor). */
    void registerModule(Module *m) { _modules.push_back(m); }

    /** Register a queue (or other state) for end-of-cycle commits. */
    void registerCommittable(Committable *c) { _commits.push_back(c); }

    /** Advance one cycle: tick all modules, then commit all state. */
    void step();

    /** Advance @p n cycles. */
    void run(Cycle n);

    /**
     * Step until @p done returns true or @p max_cycles elapse.
     * @return true if the predicate was satisfied, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles);

    /** Current cycle (number of completed steps). */
    Cycle cycle() const { return _cycle; }

    /** Root statistics group for the simulated design. */
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /**
     * Attached event sink, or nullptr (the default). Instrumented
     * modules guard every record with this pointer, so simulation
     * without a sink pays only the null check. The sink is not owned
     * and must outlive its attachment.
     */
    TraceSink *trace() const { return _trace; }
    void attachTrace(TraceSink *sink) { _trace = sink; }

    std::size_t numModules() const { return _modules.size(); }

  private:
    Cycle _cycle = 0;
    std::vector<Module *> _modules;
    std::vector<Committable *> _commits;
    StatGroup _stats{"soc"};
    TraceSink *_trace = nullptr;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_SIMULATOR_H
