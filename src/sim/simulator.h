/**
 * @file
 * The cycle-driven simulator that clocks an elaborated Beethoven SoC.
 */

#ifndef BEETHOVEN_SIM_SIMULATOR_H
#define BEETHOVEN_SIM_SIMULATOR_H

#include <functional>
#include <iosfwd>
#include <vector>

#include "base/stats.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "sim/graph_record.h"
#include "sim/module.h"
#include "sim/wake_wheel.h"

namespace beethoven
{

class TraceSink;
class StallAccount;
class HostProfiler;
class PowerLedger;
class PowerMeter;

/**
 * Simulated cycles stepped by every Simulator in this process since
 * start; the numerator of the cycles-per-second KPI (--perf-json).
 * Plain counters, not atomics: simulation is single-threaded.
 */
u64 globalSimCycles();

/** Module ticks executed process-wide (cycles weighted by SoC size). */
u64 globalModuleTicks();

/**
 * A live correctness invariant checked while the simulation runs.
 *
 * Implementations are event-driven (they subscribe to timelines or
 * queue hooks themselves); the simulator additionally calls check()
 * periodically and before final teardown so purely-cumulative
 * invariants (conservation counts, quiescence) get a chance to fire
 * with cycle context. Violations should report via fatal() after
 * dumping diagnostics.
 */
class Invariant
{
  public:
    virtual ~Invariant() = default;

    /** Periodic consistency check; @p cycle is the current cycle. */
    virtual void check(Cycle cycle) = 0;

    /** Short name used in diagnostics. */
    virtual const char *invariantName() const = 0;
};

/**
 * Which step() implementation clocks the SoC (see DESIGN.md §3).
 *
 * Both kernels step cycle-by-cycle and produce bit-identical results;
 * the event kernel skips the tick of every quiescent module, which is
 * where the idle-heavy speedup comes from. Tick remains the reference
 * kernel the differential harness compares against.
 */
enum class SimKernel
{
    Tick, ///< tick every module every cycle (the naive reference)
    Event ///< tick only awake modules; sleepers wait on the wake wheel
};

const char *simKernelName(SimKernel k);

/**
 * Clocks registered Modules and commits registered Committables.
 *
 * The simulator holds non-owning pointers; the elaborated SoC owns all
 * modules and queues and must outlive simulation.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a module for ticking (called by Module's constructor). */
    void registerModule(Module *m)
    {
        m->_index = _modules.size();
        _modules.push_back(m);
        _graph.noteModule(m);
    }

    /**
     * The registration-time connectivity record consumed by the static
     * analyzer (src/analysis/, DESIGN.md §5d). Metadata only — never
     * read on the simulation fast path.
     */
    SimGraphRecord &graphRecord() { return _graph; }
    const SimGraphRecord &graphRecord() const { return _graph; }

    /** Register a queue (or other state) for end-of-cycle commits. */
    void registerCommittable(Committable *c) { _commits.push_back(c); }

    /** Register a stall account (called by StallAccount's constructor). */
    void registerStallAccount(StallAccount *a)
    {
        _stallAccounts.push_back(a);
    }

    /** Advance one cycle: tick all modules, then commit all state. */
    void step();

    /** Advance @p n cycles. */
    void run(Cycle n);

    /**
     * Step until @p done returns true or @p max_cycles elapse.
     * @return true if the predicate was satisfied, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles);

    /** Current cycle (number of completed steps). */
    Cycle cycle() const { return _cycle; }

    /**
     * Select the stepping kernel. Switching to Event wakes every
     * module (conservative: the first cycles re-establish quiescence);
     * switching away discards pending dirty-commit tracking. Safe to
     * call between steps only.
     */
    void setKernel(SimKernel k);
    SimKernel kernel() const { return _kernel; }
    bool eventKernel() const { return _kernel == SimKernel::Event; }

    /**
     * Wake @p m so it observes an event staged this cycle. Mirrors the
     * tick kernel's visibility exactly: a module at or before the
     * current tick cursor has already run this cycle, so its wake is
     * deferred to the wheel at cycle+1; a module after the cursor (or
     * a wake arriving outside the tick phase) is woken in place.
     * No-op under the tick kernel or when @p m is already awake.
     */
    void wakeNow(Module *m);

    /**
     * Arm a wake for @p m at cycle @p at (clamped to wakeNow when
     * @p at is not in the future). Consecutive re-arms for the same
     * cycle are deduplicated per module.
     */
    void wakeAt(Module *m, Cycle at);

    /** Mark @p m quiescent (the Module::requestSleep back end). */
    void sleepModule(Module *m) { m->_awake = false; }

    /**
     * Note that @p c staged state this cycle; the event kernel commits
     * only dirty committables (a clean TimedQueue commit is a no-op).
     * Callers must not re-mark until the next cycle (guard with their
     * own dirty flag).
     */
    void markDirty(Committable *c)
    {
        gSimThreadRole.assertHeld();
        _dirtyCommits.push_back(c);
    }

    /** Modules awake right now (the event kernel's active set size). */
    std::size_t activeModules() const;

    /** Wakes armed on the wheel and not yet delivered. */
    std::size_t pendingWakes() const
    {
        gSimThreadRole.assertHeld();
        return _wheel.pending();
    }

    /**
     * Fault injection for the differential harness: silently drop
     * every @p period-th wheel-armed wake (0 disables). A dropped wake
     * makes a sleeper oversleep, which the tick-vs-event differential
     * check must surface as a digest mismatch or hang.
     */
    void plantLostWakes(u64 period)
    {
        _plantLostWakePeriod = period;
        _scheduledWakes = 0;
    }

    /** Root statistics group for the simulated design. */
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /**
     * Fold every registered StallAccount into the stats tree (each under
     * its module's group) and record the elapsed cycle count as the root
     * "cycles" scalar. Idempotent; call before dumping stats.
     */
    void publishStallStats();

    const std::vector<StallAccount *> &stallAccounts() const
    {
        return _stallAccounts;
    }

    /**
     * Forward-progress notification for the hang watchdog. Called by
     * StallAccount on Busy classifications; uninstrumented modules that
     * do real work may also call it directly.
     */
    void noteProgress() { _lastProgress = _cycle; }

    /**
     * Arm the hang watchdog: if no module reports progress for more
     * than @p limit cycles, step() dumps hang diagnostics to stderr and
     * raises a ConfigError. 0 (the default) disarms it.
     */
    void setWatchdog(Cycle limit)
    {
        _watchdogLimit = limit;
        _lastProgress = _cycle;
    }

    Cycle watchdogLimit() const { return _watchdogLimit; }

    /**
     * Add a diagnostics callback invoked by dumpHangDiagnostics (the
     * SoC registers DRAM in-flight and NoC occupancy dumpers here).
     */
    void addHangDumper(std::function<void(std::ostream &)> fn)
    {
        _hangDumpers.push_back(std::move(fn));
    }

    /** Dump every module's stall state plus registered diagnostics. */
    void dumpHangDiagnostics(std::ostream &os) const;

    /**
     * Register a live invariant (non-owning; the caller must
     * unregister before the invariant is destroyed). check() runs
     * every kInvariantPeriod cycles inside step().
     */
    void registerInvariant(Invariant *inv) { _invariants.push_back(inv); }

    void
    unregisterInvariant(Invariant *inv)
    {
        for (auto it = _invariants.begin(); it != _invariants.end(); ++it) {
            if (*it == inv) {
                _invariants.erase(it);
                return;
            }
        }
    }

    /** Run every registered invariant's periodic check now. */
    void
    checkInvariants()
    {
        for (Invariant *inv : _invariants)
            inv->check(_cycle);
    }

    const std::vector<Invariant *> &invariants() const
    {
        return _invariants;
    }

    /**
     * Attached event sink, or nullptr (the default). Instrumented
     * modules guard every record with this pointer, so simulation
     * without a sink pays only the null check. The sink is not owned
     * and must outlive its attachment.
     */
    TraceSink *trace() const { return _trace; }
    void attachTrace(TraceSink *sink) { _trace = sink; }

    /**
     * Attached host profiler, or nullptr (the default). When attached,
     * step() routes through a profiled path that attributes wall-clock
     * time per module (per the profiler's sampling mode) and drives
     * the cycles/sec heartbeat; when null, the only cost is one
     * pointer check per step. Not owned; must outlive its attachment.
     * Detaching (nullptr) is allowed between runs.
     */
    HostProfiler *hostProfiler() const { return _hostProf; }
    void attachHostProfiler(HostProfiler *prof)
    {
        _hostProf = prof;
        _profIds.clear();
    }

    /**
     * Energy decomposition of the elaborated SoC, or nullptr. Set by
     * the SoC after elaboration; read by the attached PowerMeter and
     * by EnergyConservationInvariant. Not owned.
     */
    const PowerLedger *powerLedger() const { return _powerLedger; }
    void setPowerLedger(const PowerLedger *ledger)
    {
        _powerLedger = ledger;
    }

    /**
     * Attached power meter, or nullptr (the default). When attached,
     * step() offers every completed cycle to the meter, which samples
     * the ledger on its own window; when null, the only cost is one
     * pointer check per step. Not owned; must outlive its attachment.
     */
    PowerMeter *powerMeter() const { return _powerMeter; }
    void attachPowerMeter(PowerMeter *meter) { _powerMeter = meter; }

    std::size_t numModules() const { return _modules.size(); }

  private:
    /** Tick+commit with per-phase host-time attribution. */
    void stepPhasesProfiled() BTH_REQUIRES(gSimThreadRole);

    /** Event-kernel tick+commit: wheel drain, awake scan, dirty commit. */
    void stepPhasesEvent() BTH_REQUIRES(gSimThreadRole);

    /** Wheel-arm a wake with dedup and planted-fault accounting. */
    void scheduleWake(Module *m, Cycle at) BTH_REQUIRES(gSimThreadRole);

    Cycle _cycle = 0;
    SimKernel _kernel = SimKernel::Tick;
    std::vector<Module *> _modules;
    std::vector<Committable *> _commits;
    WakeWheel _wheel BTH_GUARDED_BY(gSimThreadRole);
    std::vector<Committable *> _dirtyCommits BTH_GUARDED_BY(gSimThreadRole);
    bool _inTickPhase BTH_GUARDED_BY(gSimThreadRole) = false;
    /** Index of the module currently ticking. */
    std::size_t _cursor BTH_GUARDED_BY(gSimThreadRole) = 0;
    u64 _plantLostWakePeriod = 0;
    u64 _scheduledWakes = 0;
    std::vector<StallAccount *> _stallAccounts;
    StatGroup _stats{"soc"};
    TraceSink *_trace = nullptr;
    HostProfiler *_hostProf = nullptr;
    const PowerLedger *_powerLedger = nullptr;
    PowerMeter *_powerMeter = nullptr;
    /** Module index -> profiler component id (built lazily on use). */
    std::vector<u32> _profIds;

    Cycle _watchdogLimit = 0; ///< 0 = watchdog off
    Cycle _lastProgress = 0;
    std::vector<std::function<void(std::ostream &)>> _hangDumpers;
    std::vector<Invariant *> _invariants;

    /**
     * Registration-time metadata for the static analyzer; cold after
     * elaboration, so kept past the per-cycle state above to leave the
     * step loop's working set contiguous.
     */
    SimGraphRecord _graph;

    /** Cycles between stall counter-track emissions while tracing. */
    static constexpr Cycle kStallEmitPeriod = 1024;

    /** Cycles between periodic invariant checks. */
    static constexpr Cycle kInvariantPeriod = 256;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_SIMULATOR_H
