/**
 * @file
 * The cycle-driven simulator that clocks an elaborated Beethoven SoC.
 */

#ifndef BEETHOVEN_SIM_SIMULATOR_H
#define BEETHOVEN_SIM_SIMULATOR_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "base/stats.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "sim/graph_record.h"
#include "sim/module.h"
#include "sim/wake_wheel.h"

namespace beethoven
{

class TraceSink;
class StallAccount;
class HostProfiler;
class PowerLedger;
class PowerMeter;
class ParallelRuntime;

/**
 * Simulated cycles stepped by every Simulator in this process since
 * start; the numerator of the cycles-per-second KPI (--perf-json).
 * Plain counters: only the simulation thread (the epoch coordinator,
 * under the parallel kernel) writes them.
 */
u64 globalSimCycles();

/** Module ticks executed process-wide (cycles weighted by SoC size). */
u64 globalModuleTicks();

namespace detail
{
/** KPI counter advance from the parallel-kernel epoch coordinator. */
void addGlobalSimKpi(u64 cycles, u64 ticks);
} // namespace detail

/**
 * A live correctness invariant checked while the simulation runs.
 *
 * Implementations are event-driven (they subscribe to timelines or
 * queue hooks themselves); the simulator additionally calls check()
 * periodically and before final teardown so purely-cumulative
 * invariants (conservation counts, quiescence) get a chance to fire
 * with cycle context. Violations should report via fatal() after
 * dumping diagnostics.
 */
class Invariant
{
  public:
    virtual ~Invariant() = default;

    /** Periodic consistency check; @p cycle is the current cycle. */
    virtual void check(Cycle cycle) = 0;

    /** Short name used in diagnostics. */
    virtual const char *invariantName() const = 0;
};

/**
 * Which step() implementation clocks the SoC (see DESIGN.md §3/§4a).
 *
 * All kernels step cycle-by-cycle and produce bit-identical results;
 * the event kernel skips the tick of every quiescent module, and the
 * parallel kernel additionally runs one event loop per execution group
 * on its own worker thread, synchronizing at epoch boundaries sized by
 * the minimum cross-group queue latency. Tick remains the reference
 * kernel the differential harness compares against.
 */
enum class SimKernel
{
    Tick,    ///< tick every module every cycle (the naive reference)
    Event,   ///< tick only awake modules; sleepers wait on the wake wheel
    Parallel ///< per-group event loops on worker threads, epoch-synced
};

const char *simKernelName(SimKernel k);

/**
 * Per-execution-group kernel state for the parallel kernel. Each group
 * of shards (src/sim/parallel.h) runs the PR 8 event loop against its
 * own context; gShardContext points at it on the owning worker thread
 * (and, during serial-fence merged stepping, on the coordinator while
 * it ticks that group's modules). All fields are owned by one thread at
 * a time — the worker during an epoch, the coordinator at barriers —
 * with the epoch barrier providing the happens-before edge.
 */
struct ShardContext
{
    /** Completed cycles; mid-epoch, the cycle currently ticking. */
    Cycle cycle = 0;
    WakeWheel wheel;
    std::vector<Committable *> dirtyCommits;
    bool inTick = false;
    /** Global Module::index() of the module currently ticking. */
    std::size_t cursor = 0;
    /** This group's modules, ascending global index (= tick order). */
    std::vector<Module *> modules;
    /** Module ticks accrued this epoch; folded at the barrier. */
    u64 ticks = 0;
    Cycle lastProgress = 0;
    /** Per-group planted-fault counter (see plantLostWakes). */
    u64 scheduledWakes = 0;
    int group = -1;
};

/**
 * The executing thread's shard context: null on the main thread and on
 * every thread of a serial-kernel process; set on parallel workers for
 * their lifetime and on the coordinator per-module during merged
 * (serial-fence) stepping.
 */
extern thread_local ShardContext *gShardContext;

/**
 * Clocks registered Modules and commits registered Committables.
 *
 * The simulator holds non-owning pointers; the elaborated SoC owns all
 * modules and queues and must outlive simulation.
 */
class Simulator
{
  public:
    Simulator();
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a module for ticking (called by Module's constructor). */
    void registerModule(Module *m)
    {
        m->_index = _modules.size();
        _modules.push_back(m);
        _graph.noteModule(m);
    }

    /**
     * The registration-time connectivity record consumed by the static
     * analyzer (src/analysis/, DESIGN.md §5d). Metadata only — never
     * read on the simulation fast path.
     */
    SimGraphRecord &graphRecord() { return _graph; }
    const SimGraphRecord &graphRecord() const { return _graph; }

    /** Register a queue (or other state) for end-of-cycle commits. */
    void registerCommittable(Committable *c) { _commits.push_back(c); }

    /** Register a stall account (called by StallAccount's constructor). */
    void registerStallAccount(StallAccount *a)
    {
        _stallAccounts.push_back(a);
    }

    /** Advance one cycle: tick all modules, then commit all state. */
    void step();

    /** Advance @p n cycles. */
    void run(Cycle n);

    /**
     * Step until @p done returns true or @p max_cycles elapse.
     * @return true if the predicate was satisfied, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles);

    /**
     * Current cycle (number of completed steps). Under the parallel
     * kernel a worker thread sees its own group's cycle mid-epoch;
     * everyone else sees the barrier-synchronized global count.
     */
    Cycle
    cycle() const
    {
        if (_kernel == SimKernel::Parallel) {
            if (const ShardContext *ctx = gShardContext)
                return ctx->cycle;
        }
        return _cycle;
    }

    /**
     * Select the stepping kernel. Switching to Event or Parallel wakes
     * every module (conservative: the first cycles re-establish
     * quiescence); switching away discards pending dirty-commit
     * tracking. Safe to call between steps only; switching away from
     * Parallel after its first step is forbidden (worker threads and
     * split queues cannot be unwound).
     */
    void setKernel(SimKernel k);
    SimKernel kernel() const { return _kernel; }

    /**
     * True for the kernels with quiescence semantics (event and
     * parallel): sleep requests take effect and queues track dirty
     * state for selective commit. False only under the tick kernel.
     */
    bool eventKernel() const { return _kernel != SimKernel::Tick; }

    /**
     * Worker threads for the parallel kernel. 0 (the default) means
     * one per execution group; values above the group count are
     * clamped. Digests are independent of the thread count by
     * construction. Set before the first parallel step.
     */
    void setParallelThreads(unsigned n) { _parallelThreads = n; }
    unsigned parallelThreads() const { return _parallelThreads; }

    /**
     * Register a serial-fence predicate for the parallel kernel. While
     * any fence returns true, the coordinator steps merged single
     * cycles in global module order instead of running epochs — used
     * for phases that legitimately touch cross-group state every cycle
     * (e.g. host DMA writing functional memory that the DRAM model
     * reads). Evaluated at barriers only.
     */
    void addSerialFence(std::function<bool()> fn)
    {
        _serialFences.push_back(std::move(fn));
    }

    /**
     * Register a callback that folds distributed counters (e.g.
     * per-NoC-node flit counts) into their stats scalars. Run by
     * publishStallStats before the stats tree is read.
     */
    void addStatFolder(std::function<void()> fn)
    {
        _statFolders.push_back(std::move(fn));
    }

    /**
     * Wake @p m so it observes an event staged this cycle. Mirrors the
     * tick kernel's visibility exactly: a module at or before the
     * current tick cursor has already run this cycle, so its wake is
     * deferred to the wheel at cycle+1; a module after the cursor (or
     * a wake arriving outside the tick phase) is woken in place.
     * No-op under the tick kernel or when @p m is already awake.
     */
    void wakeNow(Module *m);

    /**
     * Arm a wake for @p m at cycle @p at (clamped to wakeNow when
     * @p at is not in the future). Consecutive re-arms for the same
     * cycle are deduplicated per module.
     */
    void wakeAt(Module *m, Cycle at);

    /** Mark @p m quiescent (the Module::requestSleep back end). */
    void sleepModule(Module *m) { m->_awake = false; }

    /**
     * Note that @p c staged state this cycle; the event kernel commits
     * only dirty committables (a clean TimedQueue commit is a no-op).
     * Callers must not re-mark until the next cycle (guard with their
     * own dirty flag).
     */
    void markDirty(Committable *c)
    {
        gSimThreadRole.assertHeld();
        if (_kernel == SimKernel::Parallel) {
            if (ShardContext *ctx = gShardContext) {
                ctx->dirtyCommits.push_back(c);
                return;
            }
        }
        _dirtyCommits.push_back(c);
    }

    /** Modules awake right now (the event kernel's active set size). */
    std::size_t activeModules() const;

    /**
     * Wakes armed and not yet delivered (global wheel plus, under the
     * parallel kernel, every group wheel; barrier-time view only).
     */
    std::size_t pendingWakes() const;

    /**
     * Fault injection for the differential harness: silently drop
     * every @p period-th wheel-armed wake (0 disables). A dropped wake
     * makes a sleeper oversleep, which the tick-vs-event differential
     * check must surface as a digest mismatch or hang.
     */
    void plantLostWakes(u64 period)
    {
        _plantLostWakePeriod = period;
        _scheduledWakes = 0;
    }

    /** Root statistics group for the simulated design. */
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /**
     * Fold every registered StallAccount into the stats tree (each under
     * its module's group) and record the elapsed cycle count as the root
     * "cycles" scalar. Idempotent; call before dumping stats.
     */
    void publishStallStats();

    const std::vector<StallAccount *> &stallAccounts() const
    {
        return _stallAccounts;
    }

    /**
     * Forward-progress notification for the hang watchdog. Called by
     * StallAccount on Busy classifications; uninstrumented modules that
     * do real work may also call it directly.
     */
    void
    noteProgress()
    {
        if (_kernel == SimKernel::Parallel) {
            if (ShardContext *ctx = gShardContext) {
                ctx->lastProgress = ctx->cycle;
                return;
            }
        }
        _lastProgress = _cycle;
    }

    /**
     * Arm the hang watchdog: if no module reports progress for more
     * than @p limit cycles, step() dumps hang diagnostics to stderr and
     * raises a ConfigError. 0 (the default) disarms it.
     */
    void setWatchdog(Cycle limit)
    {
        _watchdogLimit = limit;
        _lastProgress = _cycle;
    }

    Cycle watchdogLimit() const { return _watchdogLimit; }

    /**
     * Add a diagnostics callback invoked by dumpHangDiagnostics (the
     * SoC registers DRAM in-flight and NoC occupancy dumpers here).
     */
    void addHangDumper(std::function<void(std::ostream &)> fn)
    {
        _hangDumpers.push_back(std::move(fn));
    }

    /** Dump every module's stall state plus registered diagnostics. */
    void dumpHangDiagnostics(std::ostream &os) const;

    /**
     * Register a live invariant (non-owning; the caller must
     * unregister before the invariant is destroyed). check() runs
     * every kInvariantPeriod cycles inside step().
     */
    void registerInvariant(Invariant *inv) { _invariants.push_back(inv); }

    void
    unregisterInvariant(Invariant *inv)
    {
        for (auto it = _invariants.begin(); it != _invariants.end(); ++it) {
            if (*it == inv) {
                _invariants.erase(it);
                return;
            }
        }
    }

    /** Run every registered invariant's periodic check now. */
    void
    checkInvariants()
    {
        for (Invariant *inv : _invariants)
            inv->check(_cycle);
    }

    const std::vector<Invariant *> &invariants() const
    {
        return _invariants;
    }

    /**
     * Attached event sink, or nullptr (the default). Instrumented
     * modules guard every record with this pointer, so simulation
     * without a sink pays only the null check. The sink is not owned
     * and must outlive its attachment.
     */
    TraceSink *trace() const { return _trace; }
    void attachTrace(TraceSink *sink) { _trace = sink; }

    /**
     * Attached host profiler, or nullptr (the default). When attached,
     * step() routes through a profiled path that attributes wall-clock
     * time per module (per the profiler's sampling mode) and drives
     * the cycles/sec heartbeat; when null, the only cost is one
     * pointer check per step. Not owned; must outlive its attachment.
     * Detaching (nullptr) is allowed between runs.
     */
    HostProfiler *hostProfiler() const { return _hostProf; }
    void attachHostProfiler(HostProfiler *prof)
    {
        _hostProf = prof;
        _profIds.clear();
    }

    /**
     * Energy decomposition of the elaborated SoC, or nullptr. Set by
     * the SoC after elaboration; read by the attached PowerMeter and
     * by EnergyConservationInvariant. Not owned.
     */
    const PowerLedger *powerLedger() const { return _powerLedger; }
    void setPowerLedger(const PowerLedger *ledger)
    {
        _powerLedger = ledger;
    }

    /**
     * Attached power meter, or nullptr (the default). When attached,
     * step() offers every completed cycle to the meter, which samples
     * the ledger on its own window; when null, the only cost is one
     * pointer check per step. Not owned; must outlive its attachment.
     */
    PowerMeter *powerMeter() const { return _powerMeter; }
    void attachPowerMeter(PowerMeter *meter) { _powerMeter = meter; }

    std::size_t numModules() const { return _modules.size(); }

    /**
     * The parallel-kernel runtime once the first parallel step has
     * prepared it; nullptr before that and under the serial kernels.
     * Introspection only (tests, telemetry).
     */
    const ParallelRuntime *parallelRuntime() const;

  private:
    friend class ParallelRuntime;

    /** Parallel-kernel dispatch target of step()/run(). */
    void parallelRun(Cycle n);

    /** Tick+commit with per-phase host-time attribution. */
    void stepPhasesProfiled() BTH_REQUIRES(gSimThreadRole);

    /** Event-kernel tick+commit: wheel drain, awake scan, dirty commit. */
    void stepPhasesEvent() BTH_REQUIRES(gSimThreadRole);

    /** Wheel-arm a wake with dedup and planted-fault accounting. */
    void scheduleWake(Module *m, Cycle at) BTH_REQUIRES(gSimThreadRole);

    /** Group-wheel variant for the parallel kernel's worker threads. */
    void scheduleWakeCtx(ShardContext &ctx, Module *m, Cycle at);

    Cycle _cycle = 0;
    SimKernel _kernel = SimKernel::Tick;
    std::vector<Module *> _modules;
    std::vector<Committable *> _commits;
    WakeWheel _wheel BTH_GUARDED_BY(gSimThreadRole);
    std::vector<Committable *> _dirtyCommits BTH_GUARDED_BY(gSimThreadRole);
    bool _inTickPhase BTH_GUARDED_BY(gSimThreadRole) = false;
    /** Index of the module currently ticking. */
    std::size_t _cursor BTH_GUARDED_BY(gSimThreadRole) = 0;
    u64 _plantLostWakePeriod = 0;
    u64 _scheduledWakes = 0;
    std::vector<StallAccount *> _stallAccounts;
    StatGroup _stats{"soc"};
    TraceSink *_trace = nullptr;
    HostProfiler *_hostProf = nullptr;
    const PowerLedger *_powerLedger = nullptr;
    PowerMeter *_powerMeter = nullptr;
    /** Module index -> profiler component id (built lazily on use). */
    std::vector<u32> _profIds;

    Cycle _watchdogLimit = 0; ///< 0 = watchdog off
    Cycle _lastProgress = 0;
    std::vector<std::function<void(std::ostream &)>> _hangDumpers;
    std::vector<Invariant *> _invariants;

    /** Parallel-kernel runtime; created lazily at the first parallel
     *  step so post-elaboration modules (e.g. the host interface) are
     *  registered before the graph is partitioned. */
    std::unique_ptr<ParallelRuntime> _parallel;
    unsigned _parallelThreads = 0; ///< 0 = one per execution group
    std::vector<std::function<bool()>> _serialFences;
    std::vector<std::function<void()>> _statFolders;

    /**
     * Registration-time metadata for the static analyzer; cold after
     * elaboration, so kept past the per-cycle state above to leave the
     * step loop's working set contiguous.
     */
    SimGraphRecord _graph;

    /** Cycles between stall counter-track emissions while tracing. */
    static constexpr Cycle kStallEmitPeriod = 1024;

    /** Cycles between periodic invariant checks. */
    static constexpr Cycle kInvariantPeriod = 256;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_SIMULATOR_H
