/**
 * @file
 * WakeWheel — the pending-wake schedule of the event-driven kernel.
 *
 * A classic timing wheel: near-future wakes land in a ring of slots
 * indexed by cycle modulo the wheel size (O(1) schedule and drain),
 * wakes more than a revolution away overflow into a min-heap. The
 * simulator drains the wheel once per cycle, in cycle order, so a
 * module woken for cycle C is awake before cycle C's tick phase.
 *
 * Entries are (cycle, module) pairs; duplicates are allowed (draining
 * an already-awake module is a harmless no-op), which lets producers
 * re-arm consumers without coordinating.
 */

#ifndef BEETHOVEN_SIM_WAKE_WHEEL_H
#define BEETHOVEN_SIM_WAKE_WHEEL_H

#include <cstddef>
#include <queue>
#include <vector>

#include "base/log.h"
#include "base/thread_annotations.h"
#include "base/types.h"

namespace beethoven
{

class Module;

class WakeWheel
{
  public:
    explicit WakeWheel(std::size_t slots = 1024) : _slots(slots)
    {
        beethoven_assert(slots >= 2, "wake wheel needs >= 2 slots");
    }

    /**
     * Arm a wake for @p m at cycle @p at. @p now is the current cycle;
     * @p at must be strictly in the future (same-cycle wakes go through
     * the simulator's wakeNow path, not the wheel).
     */
    void
    schedule(Cycle now, Cycle at, Module *m) BTH_REQUIRES(gSimThreadRole)
    {
        beethoven_assert(at > now, "wheel wake must be in the future");
        if (at - now < _slots.size())
            _slots[at % _slots.size()].push_back(Entry{at, m});
        else
            _far.push(Entry{at, m});
    }

    /**
     * Deliver every wake due at exactly @p now via @p fn(Module*).
     * Must be called once per cycle in ascending order; entries in the
     * current ring slot that belong to a later revolution are kept.
     */
    template <typename Fn>
    void
    drain(Cycle now, Fn &&fn) BTH_REQUIRES(gSimThreadRole)
    {
        std::vector<Entry> &slot = _slots[now % _slots.size()];
        if (!slot.empty()) {
            std::size_t keep = 0;
            for (std::size_t i = 0; i < slot.size(); ++i) {
                if (slot[i].at <= now)
                    fn(slot[i].m);
                else
                    slot[keep++] = slot[i];
            }
            slot.resize(keep);
        }
        while (!_far.empty() && _far.top().at <= now) {
            // Heap entries a revolution out become due without ever
            // migrating into the ring; deliver them straight away.
            fn(_far.top().m);
            _far.pop();
        }
    }

    /**
     * Move every armed wake out of the wheel via @p fn(at, Module*),
     * leaving it empty. The parallel kernel uses this once at prepare
     * time to migrate elaboration-era wakes (e.g. DRAM refresh timers)
     * from the global wheel into the owning group's wheel.
     */
    template <typename Fn>
    void
    extractAll(Fn &&fn) BTH_REQUIRES(gSimThreadRole)
    {
        for (auto &slot : _slots) {
            for (const Entry &e : slot)
                fn(e.at, e.m);
            slot.clear();
        }
        while (!_far.empty()) {
            fn(_far.top().at, _far.top().m);
            _far.pop();
        }
    }

    /** Armed wakes not yet delivered (spurious duplicates included). */
    std::size_t
    pending() const BTH_REQUIRES(gSimThreadRole)
    {
        std::size_t n = _far.size();
        for (const auto &slot : _slots)
            n += slot.size();
        return n;
    }

  private:
    struct Entry
    {
        Cycle at;
        Module *m;
    };
    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            return a.at > b.at;
        }
    };

    std::vector<std::vector<Entry>> _slots BTH_GUARDED_BY(gSimThreadRole);
    std::priority_queue<Entry, std::vector<Entry>, Later> _far
        BTH_GUARDED_BY(gSimThreadRole);
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_WAKE_WHEEL_H
