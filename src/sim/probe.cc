#include "sim/probe.h"

#include <algorithm>
#include <iomanip>

#include "base/log.h"

namespace beethoven
{

ProbeSet::ProbeSet(Simulator &sim, std::string name, Cycle period)
    : Module(sim, std::move(name)), _period(std::max<Cycle>(1, period))
{}

void
ProbeSet::add(std::string signal_name, Signal signal)
{
    beethoven_assert(signal != nullptr, "probe %s: null signal",
                     signal_name.c_str());
    beethoven_assert(_sampleCycles.empty(),
                     "probe signals must be added before sampling "
                     "starts");
    _signals.push_back({std::move(signal_name), std::move(signal), {}});
}

const std::vector<double> &
ProbeSet::trace(std::size_t idx) const
{
    beethoven_assert(idx < _signals.size(), "probe index %zu out of "
                     "range", idx);
    return _signals[idx].samples;
}

void
ProbeSet::tick()
{
    if (sim().cycle() % _period != 0)
        return;
    _sampleCycles.push_back(sim().cycle());
    for (auto &entry : _signals)
        entry.samples.push_back(entry.signal());
}

namespace
{

/** Quote a CSV field when it contains a delimiter, quote, or newline. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
ProbeSet::writeCsv(std::ostream &os) const
{
    os << "# period=" << _period << "\n";
    os << "cycle";
    for (const auto &entry : _signals)
        os << "," << csvField(entry.name);
    os << "\n";
    for (std::size_t i = 0; i < _sampleCycles.size(); ++i) {
        os << _sampleCycles[i];
        for (const auto &entry : _signals)
            os << "," << entry.samples[i];
        os << "\n";
    }
}

void
ProbeSet::renderSparklines(std::ostream &os, unsigned width) const
{
    static const char levels[] = " .:-=+*#%@";
    const std::size_t n = _sampleCycles.size();
    if (n == 0) {
        os << "(no samples)\n";
        return;
    }
    for (const auto &entry : _signals) {
        const double lo =
            *std::min_element(entry.samples.begin(),
                              entry.samples.end());
        const double hi =
            *std::max_element(entry.samples.begin(),
                              entry.samples.end());
        std::string line(width, ' ');
        for (unsigned x = 0; x < width; ++x) {
            // Average the samples falling into this column.
            const std::size_t first = std::size_t(x) * n / width;
            const std::size_t last =
                std::max(first + 1, std::size_t(x + 1) * n / width);
            double sum = 0;
            for (std::size_t i = first; i < last; ++i)
                sum += entry.samples[i];
            const double v = sum / double(last - first);
            const double norm = hi > lo ? (v - lo) / (hi - lo)
                                        : (v > 0 ? 1.0 : 0.0);
            line[x] = levels[static_cast<unsigned>(norm * 9.0)];
        }
        os << "[" << line << "] " << entry.name << "  (min " << lo
           << ", max " << hi << ")\n";
    }
}

void
ProbeSet::clear()
{
    _sampleCycles.clear();
    for (auto &entry : _signals)
        entry.samples.clear();
}

} // namespace beethoven
