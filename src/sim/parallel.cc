#include "sim/parallel.h"

#include <algorithm>
#include <iostream>
#include <limits>
#include <map>
#include <string>

#include "base/log.h"
#include "perf/host_profiler.h"

namespace beethoven
{

namespace
{

constexpr std::size_t kNoSlackBound =
    std::numeric_limits<std::size_t>::max();

void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

/** Union-find over the (sparse, arbitrary-valued) shard ids. */
class ShardUnion
{
  public:
    void
    add(int id)
    {
        _parent.try_emplace(id, id);
    }

    int
    find(int id)
    {
        int root = id;
        while (_parent[root] != root)
            root = _parent[root];
        while (_parent[id] != root) {
            const int next = _parent[id];
            _parent[id] = root;
            id = next;
        }
        return root;
    }

    void
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        // Deterministic orientation: smaller id wins the root, so the
        // group numbering is a pure function of the graph.
        if (b < a)
            std::swap(a, b);
        _parent[b] = a;
    }

  private:
    // Ordered map so iteration (and thus group numbering) is
    // deterministic.
    std::map<int, int> _parent;
};

} // namespace

ParallelRuntime::ParallelRuntime(Simulator &sim) : _sim(sim)
{
    gateAttachments();
    buildGroups();
    gateSharedState();
    splitCrossEdges();
    migrateWakes();
    startWorkers();
}

ParallelRuntime::~ParallelRuntime()
{
    _exit = true;
    _arrived.store(0, std::memory_order_relaxed);
    _generation.fetch_add(1, std::memory_order_release);
    _generation.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
ParallelRuntime::gateAttachments() const
{
    if (_sim.trace() != nullptr) {
        fatal("parallel kernel: a TraceSink is attached; event tracing "
              "appends to one buffer from every group and is not "
              "supported multi-threaded (run tracing under "
              "--sim-kernel=event)");
    }
    if (_sim.powerMeter() != nullptr) {
        fatal("parallel kernel: a PowerMeter is attached; per-cycle "
              "ledger sampling reads cross-group activity counters "
              "(run power metering under --sim-kernel=event)");
    }
    const HostProfiler *prof = _sim.hostProfiler();
    if (prof != nullptr && prof->mode() != HostProfiler::Mode::KpiOnly) {
        fatal("parallel kernel: host profiler mode '%s' needs every "
              "module ticked on one thread; only the KPI-only "
              "heartbeat is supported",
              prof->modeName());
    }
}

void
ParallelRuntime::buildGroups()
{
    const SimGraphRecord &rec = _sim.graphRecord();

    // Shard stamp per module index.
    std::vector<int> shard_of(_sim._modules.size(),
                              SimGraphRecord::kNoShard);
    for (const SimGraphRecord::ModuleInfo &info : rec.modules()) {
        if (info.module != nullptr &&
            info.module->index() < shard_of.size() &&
            _sim._modules[info.module->index()] == info.module) {
            shard_of[info.module->index()] = info.shard;
        }
    }
    // A graph with no stamps at all was never partitioned (bare
    // Simulator, no AcceleratorSoc): run it as one group, which is
    // the event kernel on a single worker. Only a *partial* stamping
    // is an error — parallelising around unstamped modules would put
    // them in no group and silently skip their ticks.
    const bool any_stamped =
        std::any_of(shard_of.begin(), shard_of.end(), [](int s) {
            return s != SimGraphRecord::kNoShard;
        });
    if (!any_stamped) {
        std::fill(shard_of.begin(), shard_of.end(), 0);
    } else {
        for (std::size_t i = 0; i < shard_of.size(); ++i) {
            if (shard_of[i] == SimGraphRecord::kNoShard) {
                fatal("parallel kernel: module '%s' has no shard "
                      "assignment (BTH112); stamp it via "
                      "SimGraphRecord::setShard before the first step",
                      _sim._modules[i]->name().c_str());
            }
        }
    }

    // Execution groups: same shard, plus any queue edge too fast to
    // epoch-buffer (latency < 2 means a push is visible next cycle,
    // i.e. inside any epoch longer than one cycle).
    ShardUnion uf;
    for (int s : shard_of)
        uf.add(s);
    for (const SimGraphRecord::QueueEdge &e : rec.edges()) {
        if (e.producer == nullptr || e.consumer == nullptr)
            continue;
        if (e.producer->index() >= shard_of.size() ||
            e.consumer->index() >= shard_of.size())
            continue;
        const int ps = shard_of[e.producer->index()];
        const int cs = shard_of[e.consumer->index()];
        if (ps != cs && e.latency < 2)
            uf.unite(ps, cs);
    }

    // Deterministic group numbering: ascending root shard id.
    std::map<int, int> group_of_root;
    for (int s : shard_of) {
        const int root = uf.find(s);
        group_of_root.try_emplace(root,
                                  static_cast<int>(group_of_root.size()));
    }
    // Re-number in sorted-root order for stability.
    {
        int next = 0;
        for (auto &[root, idx] : group_of_root)
            idx = next++;
    }

    _groups.clear();
    for (std::size_t i = 0; i < group_of_root.size(); ++i) {
        auto ctx = std::make_unique<ShardContext>();
        ctx->group = static_cast<int>(i);
        ctx->cycle = _sim._cycle;
        ctx->lastProgress = _sim._lastProgress;
        _groups.push_back(std::move(ctx));
    }
    _groupOf.assign(shard_of.size(), -1);
    for (std::size_t i = 0; i < shard_of.size(); ++i) {
        const int g = group_of_root.at(uf.find(shard_of[i]));
        _groupOf[i] = g;
        _groups[g]->modules.push_back(_sim._modules[i]);
    }
    // _modules is registration order == ascending index, so each
    // group's list is already in tick order.
}

void
ParallelRuntime::gateSharedState() const
{
    const SimGraphRecord &rec = _sim.graphRecord();

    // Shard id -> group for extraShards lookups.
    std::map<int, int> shard_group;
    for (const SimGraphRecord::ModuleInfo &info : rec.modules()) {
        if (info.module != nullptr &&
            info.module->index() < _groupOf.size() &&
            _sim._modules[info.module->index()] == info.module) {
            shard_group[info.shard] = _groupOf[info.module->index()];
        }
    }

    for (const SimGraphRecord::SharedState &st : rec.sharedStates()) {
        int first = -1;
        bool crosses = st.spansAllShards && _groups.size() > 1;
        auto touch = [&](int group) {
            if (group < 0)
                return;
            if (first == -1)
                first = group;
            else if (group != first)
                crosses = true;
        };
        for (const Module *m : st.accessors) {
            if (m != nullptr && m->index() < _groupOf.size() &&
                _sim._modules[m->index()] == m)
                touch(_groupOf[m->index()]);
        }
        for (int s : st.extraShards) {
            auto it = shard_group.find(s);
            if (it != shard_group.end())
                touch(it->second);
        }
        if (crosses && st.resolution.empty()) {
            fatal("parallel kernel: shared state '%s' (%s, registered "
                  "at %s) is reachable from more than one execution "
                  "group and has no registered resolution (BTH110); "
                  "resolve it via SimGraphRecord::resolveSharedState",
                  st.name.c_str(), st.kind.c_str(), st.site.str().c_str());
        }
    }
}

void
ParallelRuntime::splitCrossEdges()
{
    const SimGraphRecord &rec = _sim.graphRecord();
    _quantum = 0;
    for (const SimGraphRecord::QueueEdge &e : rec.edges()) {
        if (e.producer == nullptr || e.consumer == nullptr)
            continue;
        if (e.producer->index() >= _groupOf.size() ||
            e.consumer->index() >= _groupOf.size())
            continue;
        if (_sim._modules[e.producer->index()] != e.producer ||
            _sim._modules[e.consumer->index()] != e.consumer)
            continue;
        const int pg = _groupOf[e.producer->index()];
        const int cg = _groupOf[e.consumer->index()];
        if (pg == cg)
            continue;
        beethoven_assert(e.latency >= 2,
                         "cross-group edge with latency < 2 survived "
                         "group coalescing");
        if (e.object == nullptr || !e.object->enterSplitMode()) {
            fatal("parallel kernel: queue registered at %s crosses "
                  "groups (%s -> %s) but does not support split mode",
                  e.site.str().c_str(), e.producer->name().c_str(),
                  e.consumer->name().c_str());
        }
        _splits.push_back(Split{e.object, e.producer, e.consumer,
                                e.latency});
        if (_quantum == 0 || e.latency < _quantum)
            _quantum = e.latency;
    }
    // Seed the slack bound from the split queues' current free space.
    _minSlack = kNoSlackBound;
    drainSplits(_sim._cycle);
}

void
ParallelRuntime::migrateWakes()
{
    gSimThreadRole.assertHeld();
    _sim._wheel.extractAll([&](Cycle at, Module *m) {
        if (m->index() >= _groupOf.size() ||
            _sim._modules[m->index()] != m)
            return; // stale entry for a dead transient module
        if (at <= _sim._cycle) {
            m->_awake = true;
            return;
        }
        ctxOf(m).wheel.schedule(_sim._cycle, at, m);
    });
}

void
ParallelRuntime::startWorkers()
{
    unsigned want = _sim._parallelThreads;
    if (want == 0 || want > _groups.size())
        want = static_cast<unsigned>(_groups.size());
    _assignment.assign(want, {});
    for (std::size_t g = 0; g < _groups.size(); ++g)
        _assignment[g % want].push_back(_groups[g].get());
    // Spin before the futex wait only when cores are actually free to
    // spin on: the coordinator plus every worker gets one.
    const unsigned hw = std::thread::hardware_concurrency();
    _spin = (hw > want) ? 20000 : 0;
    _workers.reserve(want);
    for (unsigned wi = 0; wi < want; ++wi)
        _workers.emplace_back([this, wi] { workerMain(wi); });
}

ShardContext &
ParallelRuntime::ctxOf(const Module *m)
{
    return *_groups[_groupOf[m->index()]];
}

int
ParallelRuntime::groupOfModule(const Module *m) const
{
    if (m == nullptr || m->index() >= _groupOf.size())
        return -1;
    return _groupOf[m->index()];
}

std::size_t
ParallelRuntime::pendingGroupWakes() const
{
    gSimThreadRole.assertHeld();
    std::size_t n = 0;
    for (const auto &g : _groups)
        n += g->wheel.pending();
    return n;
}

bool
ParallelRuntime::fenceActive() const
{
    for (const auto &fn : _sim._serialFences) {
        if (fn())
            return true;
    }
    return false;
}

/** Barrier-time services handed to TimedQueue::drainSplit. */
class ParallelRuntime::DrainHost final : public SplitDrainHost
{
  public:
    DrainHost(ParallelRuntime &rt, Cycle barrier)
        : _rt(rt), _barrier(barrier)
    {
    }

    Cycle barrierCycle() const override { return _barrier; }

    void
    armWake(Module *m, Cycle at) override
    {
        beethoven_assert(at >= _barrier, "drain wake in the past");
        if (at == _barrier) {
            m->_awake = true;
            return;
        }
        if (m->_lastScheduledWake == at)
            return;
        m->_lastScheduledWake = at;
        _rt.ctxOf(m).wheel.schedule(_barrier, at, m);
    }

    void
    noteSlack(std::size_t slack) override
    {
        _minSlack = std::min(_minSlack, slack);
    }

    std::size_t minSlack() const { return _minSlack; }

  private:
    ParallelRuntime &_rt;
    Cycle _barrier;
    std::size_t _minSlack = kNoSlackBound;
};

void
ParallelRuntime::drainSplits(Cycle barrier)
{
    gSimThreadRole.assertHeld();
    DrainHost host(*this, barrier);
    for (const Split &s : _splits)
        s.object->drainSplit(host);
    _minSlack = host.minSlack();
}

void
ParallelRuntime::runEpochOn(ShardContext &ctx, Cycle start, Cycle len)
{
    gSimThreadRole.assertHeld();
    u64 ticks = 0;
    for (Cycle c = start; c < start + len; ++c) {
        ctx.cycle = c;
        ctx.wheel.drain(c, [](Module *m) { m->_awake = true; });
        ctx.inTick = true;
        for (Module *m : ctx.modules) {
            if (!m->_awake)
                continue;
            ctx.cursor = m->index();
            m->tick();
            ++ticks;
        }
        ctx.inTick = false;
        for (Committable *qc : ctx.dirtyCommits)
            qc->commit();
        ctx.dirtyCommits.clear();
    }
    ctx.cycle = start + len;
    ctx.ticks += ticks;
}

void
ParallelRuntime::workerMain(unsigned wi)
{
    gSimThreadRole.assertHeld();
    u64 seen = 0;
    for (;;) {
        u64 gen = _generation.load(std::memory_order_acquire);
        unsigned spins = 0;
        while (gen == seen) {
            if (spins < _spin) {
                ++spins;
                cpuRelax();
            } else {
                _generation.wait(gen, std::memory_order_acquire);
            }
            gen = _generation.load(std::memory_order_acquire);
        }
        seen = gen;
        if (_exit)
            break;
        for (ShardContext *ctx : _assignment[wi]) {
            gShardContext = ctx;
            runEpochOn(*ctx, _epochStart, _epochLen);
        }
        gShardContext = nullptr;
        _arrived.fetch_add(1, std::memory_order_release);
        _arrived.notify_one();
    }
}

void
ParallelRuntime::mergedCycle()
{
    gSimThreadRole.assertHeld();
    const Cycle c = _sim._cycle;
    for (auto &g : _groups) {
        g->cycle = c;
        g->wheel.drain(c, [](Module *m) { m->_awake = true; });
    }
    // Global module-index order — the serial kernels' tick order —
    // with the thread-local context switched per module so wake and
    // dirty routing land in the owning group.
    for (Module *m : _sim._modules) {
        if (!m->_awake)
            continue;
        ShardContext &ctx = *_groups[_groupOf[m->index()]];
        gShardContext = &ctx;
        ctx.inTick = true;
        ctx.cursor = m->index();
        m->tick();
        ++ctx.ticks;
    }
    gShardContext = nullptr;
    for (auto &g : _groups) {
        g->inTick = false;
        for (Committable *qc : g->dirtyCommits)
            qc->commit();
        g->dirtyCommits.clear();
    }
    ++_mergedCycles;
    drainSplits(c + 1);
    barrierBookkeeping(c + 1, 1);
}

void
ParallelRuntime::barrierBookkeeping(Cycle new_cycle, Cycle epoch_len)
{
    u64 ticks = 0;
    Cycle progress = _sim._lastProgress;
    for (auto &g : _groups) {
        ticks += g->ticks;
        g->ticks = 0;
        if (g->lastProgress > progress)
            progress = g->lastProgress;
        g->cycle = new_cycle;
    }
    _sim._lastProgress = progress;
    _sim._cycle = new_cycle;
    detail::addGlobalSimKpi(epoch_len, ticks);
    if (HostProfiler *prof = _sim.hostProfiler()) {
        for (Cycle i = 0; i < epoch_len; ++i)
            prof->onCycle();
    }
    if (!_sim._invariants.empty() &&
        new_cycle % Simulator::kInvariantPeriod == 0) {
        _sim.checkInvariants();
    }
    if (_sim._watchdogLimit != 0 &&
        new_cycle - _sim._lastProgress > _sim._watchdogLimit) {
        _sim.dumpHangDiagnostics(std::cerr);
        fatal("simulation hang: no module made forward progress for "
              "%llu cycles (at cycle %llu)",
              static_cast<unsigned long long>(new_cycle -
                                              _sim._lastProgress),
              static_cast<unsigned long long>(new_cycle));
    }
}

void
ParallelRuntime::runCycles(Cycle n)
{
    gSimThreadRole.assertHeld();
    beethoven_assert(_groupOf.size() == _sim._modules.size(),
                     "module registered after the parallel kernel "
                     "partitioned the graph");
    Cycle remaining = n;
    while (remaining > 0) {
        if (fenceActive()) {
            mergedCycle();
            --remaining;
            continue;
        }
        Cycle e = remaining;
        if (_quantum != 0 && _quantum < e)
            e = _quantum;
        if (!_splits.empty()) {
            // A full split queue (slack 0) forces lockstep: the pop
            // credit crossing at the next barrier is exactly the
            // pop-frees-space-at-C+1 rule of the serial kernels.
            const Cycle slack_cap =
                _minSlack == 0 ? 1 : static_cast<Cycle>(_minSlack);
            if (slack_cap < e)
                e = slack_cap;
        }
        if (!_sim._invariants.empty()) {
            const Cycle to_boundary =
                Simulator::kInvariantPeriod -
                _sim._cycle % Simulator::kInvariantPeriod;
            if (to_boundary < e)
                e = to_boundary;
        }
        _epochStart = _sim._cycle;
        _epochLen = e;
        _lastEpoch = e;
        _arrived.store(0, std::memory_order_relaxed);
        _generation.fetch_add(1, std::memory_order_release);
        _generation.notify_all();
        const unsigned want = static_cast<unsigned>(_workers.size());
        unsigned arrived = _arrived.load(std::memory_order_acquire);
        unsigned spins = 0;
        while (arrived != want) {
            if (spins < _spin) {
                ++spins;
                cpuRelax();
            } else {
                _arrived.wait(arrived, std::memory_order_acquire);
            }
            arrived = _arrived.load(std::memory_order_acquire);
        }
        drainSplits(_sim._cycle + e);
        barrierBookkeeping(_sim._cycle + e, e);
        remaining -= e;
    }
}

void
ParallelRuntime::armWakeOutside(Module *m, Cycle at)
{
    gSimThreadRole.assertHeld();
    if (at <= _sim._cycle) {
        m->_awake = true;
        return;
    }
    if (m->_lastScheduledWake == at)
        return;
    m->_lastScheduledWake = at;
    ctxOf(m).wheel.schedule(_sim._cycle, at, m);
}

void
Simulator::parallelRun(Cycle n)
{
    gSimThreadRole.assertHeld();
    if (_parallel == nullptr)
        _parallel = std::make_unique<ParallelRuntime>(*this);
    if (n > 0)
        _parallel->runCycles(n);
}

const ParallelRuntime *
Simulator::parallelRuntime() const
{
    return _parallel.get();
}

} // namespace beethoven
