/**
 * @file
 * Registration-time record of the simulation connectivity graph.
 *
 * Every Simulator owns one SimGraphRecord. Modules, timed queues, wake
 * registrations, sleep declarations, shard assignments, and shared
 * mutable state all note themselves here as they are constructed, with
 * std::source_location provenance. The record is pure metadata: it is
 * never consulted on the simulation fast path. src/analysis/ lowers it
 * to an immutable SimGraph IR and proves the wake/sleep contract,
 * livelock freedom, and shard readiness before a single cycle runs
 * (DESIGN.md §5d).
 */

#ifndef BEETHOVEN_SIM_GRAPH_RECORD_H
#define BEETHOVEN_SIM_GRAPH_RECORD_H

#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace beethoven
{

class Module;
class Committable;

/** Repo-relative suffix of @p path ("src/…", "tools/…", …) or basename. */
std::string trimSourcePath(const char *path);

/** "src/file.cc:42" form of a source location, repo-relative. */
std::string formatSourceSite(const std::source_location &loc);

/**
 * Zero-allocation capture of a registration site. Elaboration runs a
 * SoC constructor per composition (several per bench process), so the
 * record stores the raw file/line pair and only formats the
 * "src/file.cc:42" string when the analyzer lowers it to the IR.
 */
struct SourceSite
{
    const char *file = nullptr;
    unsigned line = 0;

    SourceSite() = default;
    SourceSite(const std::source_location &loc)
        : file(loc.file_name()), line(loc.line())
    {
    }

    /** Repo-relative "src/file.cc:42"; "" when never recorded. */
    std::string str() const;
};

/**
 * Arm the wake-violation plant: the @p nth subsequent call to
 * TimedQueue::setWakeOnPush records the consumer declaration but skips
 * arming the wake — a deliberately planted lost-wake bug that the
 * static analyzer must catch (BTH100). Auto-disarms after firing;
 * 0 disarms immediately. Used by soc_fuzz --plant-wake-violation and
 * the analysis tests; never set in production paths.
 */
void plantMissingPushWake(u64 nth);

/** Consume one plant tick; true when this registration is suppressed. */
bool consumePlantMissingPushWake();

/**
 * The per-Simulator registration record. Keys queue edges by the
 * queue's address and modules by Module*; both are stable for the
 * lifetime of a composed SoC. Re-registration at a reused address
 * resets the entry (only transient test fixtures do this).
 */
class SimGraphRecord
{
  public:
    static constexpr int kNoShard = -1;

    struct QueueEdge
    {
        const void *queue = nullptr;
        /** The queue as a Committable, for the parallel kernel's
         *  split-mode activation (null for hand-recorded edges). */
        Committable *object = nullptr;
        SourceSite site;        ///< where the queue was constructed
        std::size_t capacity = 0;
        unsigned latency = 0;
        Module *consumer = nullptr;   ///< declared consumer (if any)
        SourceSite consumerSite;
        bool pushWakeArmed = false;
        Module *pushWakeTarget = nullptr;
        Module *producer = nullptr;   ///< declared producer / pop-wake target
        SourceSite producerSite;
        bool popWakeArmed = false;
    };

    struct ModuleInfo
    {
        Module *module = nullptr;
        const char *role = "module";
        bool sleepable = false;
        SourceSite sleepSite;
        bool selfWake = false;
        SourceSite selfWakeSite;
        int shard = kNoShard;
    };

    /** Mutable state reachable from the named accessor modules. */
    struct SharedState
    {
        std::string name;
        std::string kind; ///< stat | trace | power | dram-map | sim
        SourceSite site;  ///< registration site (file:line)
        std::vector<Module *> accessors;
        std::vector<int> extraShards; ///< shards that pull without a module
        bool spansAllShards = false;
        /**
         * How the cross-shard hazard is discharged under the parallel
         * kernel ("" = unresolved). The shard analyzer downgrades a
         * resolved site from a BTH110 warning to a BTH113 note, and
         * the parallel kernel refuses to elaborate while any state
         * reachable from more than one execution group is unresolved.
         */
        std::string resolution;
    };

    struct Shard
    {
        int id = kNoShard;
        std::string name;
    };

    SimGraphRecord();

    void noteModule(Module *m);
    void setRole(Module *m, const char *role);
    void setSleepable(Module *m, SourceSite site);
    void setSelfWake(Module *m, SourceSite site);
    void setShard(Module *m, int shard);

    void registerQueue(Committable *q, std::size_t capacity,
                       unsigned latency, SourceSite site);
    void recordPushWake(const void *q, Module *consumer, bool armed,
                        SourceSite site);
    void recordPopWake(const void *q, Module *producer, bool armed,
                       SourceSite site);
    /** Record-only consumer declaration (poll-driven consumers). */
    void declareConsumer(const void *q, Module *consumer, SourceSite site);
    /** Record-only producer declaration. */
    void declareProducer(const void *q, Module *producer, SourceSite site);

    void defineShard(int id, std::string name);
    void addSharedState(SharedState state);

    /**
     * Annotate the already-registered shared state @p name with the
     * mechanism that makes it safe under the parallel kernel. No-op
     * when the name is unknown (states registered conditionally).
     */
    void resolveSharedState(const std::string &name, std::string how);

    const std::vector<ModuleInfo> &modules() const { return _modules; }
    const std::vector<QueueEdge> &edges() const { return _edges; }
    const std::vector<SharedState> &sharedStates() const { return _shared; }
    const std::vector<Shard> &shards() const { return _shards; }

  private:
    ModuleInfo &infoFor(Module *m);
    QueueEdge &edgeFor(const void *q);

    std::vector<ModuleInfo> _modules;
    std::vector<QueueEdge> _edges;
    std::vector<SharedState> _shared;
    std::vector<Shard> _shards;
    std::unordered_map<const Module *, std::size_t> _moduleIndex;
    std::unordered_map<const void *, std::size_t> _edgeIndex;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_GRAPH_RECORD_H
