#include "sim/simulator.h"

#include <iostream>

#include "base/log.h"
#include "perf/host_clock.h"
#include "perf/host_profiler.h"
#include "power/power.h"
#include "trace/stall.h"
#include "trace/trace.h"

namespace beethoven
{

namespace
{

// Process-wide KPI counters (see globalSimCycles in simulator.h).
u64 g_simCycles = 0;
u64 g_moduleTicks = 0;

} // namespace

u64
globalSimCycles()
{
    return g_simCycles;
}

u64
globalModuleTicks()
{
    return g_moduleTicks;
}

Module::Module(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{
    sim.registerModule(this);
}

void
Simulator::stepPhasesProfiled()
{
    HostProfiler &hp = *_hostProf;
    if (!hp.onCycle()) {
        // Unmeasured cycle (sampling miss or KPI-only mode): the same
        // phases as the plain path, no clock reads.
        for (Module *m : _modules)
            m->tick();
        for (Committable *c : _commits)
            c->commit();
        return;
    }
    // Modules registered since attach (or since last growth) get
    // their component ids on first measured cycle.
    for (std::size_t i = _profIds.size(); i < _modules.size(); ++i)
        _profIds.push_back(hp.componentId(_modules[i]->name()));

    // One clock read per module: each tick is the interval between
    // consecutive reads, so per-component times are disjoint slices
    // of the measured total and their sum cannot exceed it.
    const u64 t_start = hostNowNs();
    u64 t_prev = t_start;
    for (std::size_t i = 0; i < _modules.size(); ++i) {
        _modules[i]->tick();
        const u64 t_now = hostNowNs();
        hp.add(_profIds[i], t_now - t_prev);
        t_prev = t_now;
    }
    for (Committable *c : _commits)
        c->commit();
    const u64 t_end = hostNowNs();
    hp.add(hp.commitComponentId(), t_end - t_prev);
    hp.addTotal(t_end - t_start);
    if (_trace != nullptr)
        hp.emitCountersMaybe(*_trace, _cycle);
}

void
Simulator::step()
{
    if (_hostProf != nullptr) {
        stepPhasesProfiled();
    } else {
        for (Module *m : _modules)
            m->tick();
        for (Committable *c : _commits)
            c->commit();
    }
    ++_cycle;
    ++g_simCycles;
    g_moduleTicks += _modules.size();
    if (_powerMeter != nullptr)
        _powerMeter->onCycle(*this);
    if (_trace != nullptr && !_stallAccounts.empty() &&
        _cycle % kStallEmitPeriod == 0) {
        for (StallAccount *a : _stallAccounts)
            a->emitCounters(*_trace, _cycle);
    }
    if (!_invariants.empty() && _cycle % kInvariantPeriod == 0)
        checkInvariants();
    if (_watchdogLimit != 0 && _cycle - _lastProgress > _watchdogLimit) {
        dumpHangDiagnostics(std::cerr);
        fatal("simulation hang: no module made forward progress for "
              "%llu cycles (at cycle %llu)",
              static_cast<unsigned long long>(_cycle - _lastProgress),
              static_cast<unsigned long long>(_cycle));
    }
}

void
Simulator::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (done())
            return true;
        step();
    }
    return done();
}

void
Simulator::publishStallStats()
{
    _stats.scalar("cycles").set(static_cast<double>(_cycle));
    for (StallAccount *a : _stallAccounts)
        a->publish(_stats.group(a->name()), _cycle);
}

void
Simulator::dumpHangDiagnostics(std::ostream &os) const
{
    os << "=== hang diagnostics: cycle "
       << static_cast<unsigned long long>(_cycle) << ", last progress at "
       << static_cast<unsigned long long>(_lastProgress) << " ===\n";
    if (!_stallAccounts.empty())
        os << "per-module stall state:\n";
    for (const StallAccount *a : _stallAccounts)
        a->dumpState(os, _cycle);
    for (const auto &fn : _hangDumpers)
        fn(os);
    os.flush();
}

} // namespace beethoven
