#include "sim/simulator.h"

#include <iostream>

#include "base/log.h"
#include "perf/host_clock.h"
#include "perf/host_profiler.h"
#include "power/power.h"
#include "sim/parallel.h"
#include "trace/stall.h"
#include "trace/trace.h"

namespace beethoven
{

namespace
{

// Process-wide KPI counters (see globalSimCycles in simulator.h).
// Written by the simulation thread only — under the parallel kernel
// that is the epoch coordinator, which folds worker tick counts in at
// barriers via detail::addGlobalSimKpi.
u64 g_simCycles = 0;
u64 g_moduleTicks = 0;

} // namespace

// The serial simulation thread's role (see base/thread_annotations.h).
// The parallel kernel partitions state into per-group ShardContexts
// instead; gShardContext selects the executing thread's view.
ThreadRole gSimThreadRole;

thread_local ShardContext *gShardContext = nullptr;

u64
globalSimCycles()
{
    return g_simCycles;
}

u64
globalModuleTicks()
{
    return g_moduleTicks;
}

namespace detail
{

void
addGlobalSimKpi(u64 cycles, u64 ticks)
{
    g_simCycles += cycles;
    g_moduleTicks += ticks;
}

} // namespace detail

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

Module::Module(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{
    sim.registerModule(this);
}

void
Module::requestSleep()
{
    beethoven_assert(_sleepDeclared,
                     "requestSleep without declareSleepable(): the static "
                     "analyzer cannot see this sleep site");
    if (_sim.eventKernel())
        _sim.sleepModule(this);
}

void
Module::requestWakeAt(Cycle at)
{
    beethoven_assert(_selfWakeDeclared,
                     "requestWakeAt without declareSelfWake(): the static "
                     "analyzer cannot see this self-arm site");
    _sim.wakeAt(this, at);
}

void
Module::sleepWith(StallAccount &acct, StallClass gap_class)
{
    beethoven_assert(_sleepDeclared,
                     "sleepWith without declareSleepable(): the static "
                     "analyzer cannot see this sleep site");
    if (!_sim.eventKernel())
        return;
    acct.setGapClass(gap_class);
    _sim.sleepModule(this);
}

void
Module::declareSleepable(std::source_location loc)
{
    _sleepDeclared = true;
    _sim.graphRecord().setSleepable(this, loc);
}

void
Module::declareSelfWake(std::source_location loc)
{
    _selfWakeDeclared = true;
    _sim.graphRecord().setSelfWake(this, loc);
}

void
Module::declareRole(const char *role)
{
    _sim.graphRecord().setRole(this, role);
}

const char *
simKernelName(SimKernel k)
{
    switch (k) {
    case SimKernel::Event:
        return "event";
    case SimKernel::Parallel:
        return "parallel";
    case SimKernel::Tick:
        break;
    }
    return "tick";
}

void
Simulator::setKernel(SimKernel k)
{
    gSimThreadRole.assertHeld();
    beethoven_assert(_parallel == nullptr || k == SimKernel::Parallel,
                     "cannot switch kernels after the parallel runtime "
                     "partitioned the graph and split its queues");
    _kernel = k;
    if (k != SimKernel::Tick) {
        // Conservative start: everything awake, quiescence re-forms as
        // modules discover they have nothing to do. Stale wheel entries
        // from an earlier event phase only cause spurious wakes.
        for (Module *m : _modules)
            m->_awake = true;
    }
    _dirtyCommits.clear();
}

void
Simulator::wakeNow(Module *m)
{
    gSimThreadRole.assertHeld();
    if (_kernel == SimKernel::Tick || m->_awake)
        return;
    if (_kernel == SimKernel::Parallel) {
        if (ShardContext *ctx = gShardContext) {
            if (ctx->inTick && m->_index <= ctx->cursor)
                scheduleWakeCtx(*ctx, m, ctx->cycle + 1);
            else
                m->_awake = true;
        } else {
            // Main thread between runs, or the coordinator at a
            // barrier: no tick is in flight, wake in place.
            m->_awake = true;
        }
        return;
    }
    if (_inTickPhase && m->_index <= _cursor) {
        // The module already ticked this cycle (or is mid-tick): the
        // earliest it could observe the event under the tick kernel is
        // next cycle, so defer the wake to the wheel.
        scheduleWake(m, _cycle + 1);
    } else {
        m->_awake = true;
    }
}

void
Simulator::wakeAt(Module *m, Cycle at)
{
    gSimThreadRole.assertHeld();
    if (_kernel == SimKernel::Tick)
        return;
    if (_kernel == SimKernel::Parallel) {
        if (ShardContext *ctx = gShardContext) {
            if (at <= ctx->cycle) {
                wakeNow(m);
                return;
            }
            scheduleWakeCtx(*ctx, m, at);
        } else if (_parallel != nullptr) {
            if (at <= _cycle)
                m->_awake = true;
            else
                _parallel->armWakeOutside(m, at);
        } else {
            // Parallel selected but not yet prepared: arm on the
            // global wheel; prepare migrates it to the owning group.
            if (at <= _cycle)
                m->_awake = true;
            else
                scheduleWake(m, at);
        }
        return;
    }
    if (at <= _cycle) {
        wakeNow(m);
        return;
    }
    scheduleWake(m, at);
}

void
Simulator::scheduleWake(Module *m, Cycle at)
{
    if (m->_lastScheduledWake == at)
        return; // a wheel entry for this cycle is already armed
    m->_lastScheduledWake = at;
    ++_scheduledWakes;
    if (_plantLostWakePeriod != 0 &&
        _scheduledWakes % _plantLostWakePeriod == 0) {
        return; // planted fault: this wake is silently lost
    }
    _wheel.schedule(_cycle, at, m);
}

void
Simulator::scheduleWakeCtx(ShardContext &ctx, Module *m, Cycle at)
{
    gSimThreadRole.assertHeld();
    if (m->_lastScheduledWake == at)
        return;
    m->_lastScheduledWake = at;
    ++ctx.scheduledWakes;
    if (_plantLostWakePeriod != 0 &&
        ctx.scheduledWakes % _plantLostWakePeriod == 0) {
        return; // planted fault: this wake is silently lost
    }
    ctx.wheel.schedule(ctx.cycle, at, m);
}

std::size_t
Simulator::activeModules() const
{
    std::size_t n = 0;
    for (const Module *m : _modules)
        n += m->_awake ? 1 : 0;
    return n;
}

void
Simulator::stepPhasesEvent()
{
    _wheel.drain(_cycle, [](Module *m) { m->_awake = true; });
    _inTickPhase = true;
    u64 ticks = 0;
    for (std::size_t i = 0; i < _modules.size(); ++i) {
        Module *m = _modules[i];
        if (!m->_awake)
            continue;
        _cursor = i;
        m->tick();
        ++ticks;
    }
    _inTickPhase = false;
    // Only queues that staged a push or pop this cycle have anything to
    // publish; a clean TimedQueue commit is a no-op by construction.
    for (Committable *c : _dirtyCommits)
        c->commit();
    _dirtyCommits.clear();
    g_moduleTicks += ticks;
}

void
Simulator::stepPhasesProfiled()
{
    if (_kernel == SimKernel::Event) {
        // Profiled cycles tick everything so per-module wall-time
        // attribution stays complete; wake/dirty bookkeeping still runs
        // underneath (ticking a sleeper is a harmless superset — it
        // re-accounts the class its sleep gap would have backfilled),
        // so an unprofiled run can resume the quiescent schedule.
        _wheel.drain(_cycle, [](Module *m) { m->_awake = true; });
    }
    HostProfiler &hp = *_hostProf;
    if (!hp.onCycle()) {
        // Unmeasured cycle (sampling miss or KPI-only mode): the same
        // phases as the plain path, no clock reads.
        for (Module *m : _modules)
            m->tick();
        for (Committable *c : _commits)
            c->commit();
        _dirtyCommits.clear();
        return;
    }
    // Modules registered since attach (or since last growth) get
    // their component ids on first measured cycle.
    for (std::size_t i = _profIds.size(); i < _modules.size(); ++i)
        _profIds.push_back(hp.componentId(_modules[i]->name()));

    // One clock read per module: each tick is the interval between
    // consecutive reads, so per-component times are disjoint slices
    // of the measured total and their sum cannot exceed it.
    const u64 t_start = hostNowNs();
    u64 t_prev = t_start;
    for (std::size_t i = 0; i < _modules.size(); ++i) {
        _modules[i]->tick();
        const u64 t_now = hostNowNs();
        hp.add(_profIds[i], t_now - t_prev);
        t_prev = t_now;
    }
    for (Committable *c : _commits)
        c->commit();
    _dirtyCommits.clear();
    const u64 t_end = hostNowNs();
    hp.add(hp.commitComponentId(), t_end - t_prev);
    hp.addTotal(t_end - t_start);
    if (_trace != nullptr)
        hp.emitCountersMaybe(*_trace, _cycle);
}

std::size_t
Simulator::pendingWakes() const
{
    gSimThreadRole.assertHeld();
    std::size_t n = _wheel.pending();
    if (_parallel != nullptr)
        n += _parallel->pendingGroupWakes();
    return n;
}

void
Simulator::step()
{
    gSimThreadRole.assertHeld();
    if (_kernel == SimKernel::Parallel) {
        parallelRun(1);
        return;
    }
    // KPI-only profiling (the bare --perf-json heartbeat) never reads
    // per-module clocks, so it composes with the event kernel: advance
    // the heartbeat and take the quiescence-aware step. Sampling and
    // scoped modes need every module ticked for complete wall-time
    // attribution and keep the tick-all profiled path.
    const bool kpi_only =
        _hostProf != nullptr &&
        _hostProf->mode() == HostProfiler::Mode::KpiOnly;
    if (_hostProf != nullptr &&
        (_kernel != SimKernel::Event || !kpi_only)) {
        stepPhasesProfiled();
        g_moduleTicks += _modules.size();
    } else if (_kernel == SimKernel::Event) {
        if (kpi_only)
            _hostProf->onCycle();
        stepPhasesEvent();
    } else {
        for (Module *m : _modules)
            m->tick();
        for (Committable *c : _commits)
            c->commit();
        g_moduleTicks += _modules.size();
    }
    ++_cycle;
    ++g_simCycles;
    if (_powerMeter != nullptr)
        _powerMeter->onCycle(*this);
    if (_trace != nullptr && !_stallAccounts.empty() &&
        _cycle % kStallEmitPeriod == 0) {
        for (StallAccount *a : _stallAccounts)
            a->emitCounters(*_trace, _cycle);
    }
    if (!_invariants.empty() && _cycle % kInvariantPeriod == 0)
        checkInvariants();
    if (_watchdogLimit != 0 && _cycle - _lastProgress > _watchdogLimit) {
        dumpHangDiagnostics(std::cerr);
        fatal("simulation hang: no module made forward progress for "
              "%llu cycles (at cycle %llu)",
              static_cast<unsigned long long>(_cycle - _lastProgress),
              static_cast<unsigned long long>(_cycle));
    }
}

void
Simulator::run(Cycle n)
{
    if (_kernel == SimKernel::Parallel) {
        parallelRun(n);
        return;
    }
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (done())
            return true;
        step();
    }
    return done();
}

void
Simulator::publishStallStats()
{
    // Fold distributed counters (per-NoC-node flit locals, ...) into
    // their scalars before anything reads the stats tree.
    for (const auto &fn : _statFolders)
        fn();
    _stats.scalar("cycles").set(static_cast<double>(_cycle));
    for (StallAccount *a : _stallAccounts)
        a->publish(_stats.group(a->name()), _cycle);
}

void
Simulator::dumpHangDiagnostics(std::ostream &os) const
{
    os << "=== hang diagnostics: cycle "
       << static_cast<unsigned long long>(_cycle) << ", last progress at "
       << static_cast<unsigned long long>(_lastProgress) << " ===\n";
    if (!_stallAccounts.empty())
        os << "per-module stall state:\n";
    for (const StallAccount *a : _stallAccounts)
        a->dumpState(os, _cycle);
    for (const auto &fn : _hangDumpers)
        fn(os);
    os.flush();
}

} // namespace beethoven
