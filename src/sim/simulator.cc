#include "sim/simulator.h"

namespace beethoven
{

Module::Module(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{
    sim.registerModule(this);
}

void
Simulator::step()
{
    for (Module *m : _modules)
        m->tick();
    for (Committable *c : _commits)
        c->commit();
    ++_cycle;
}

void
Simulator::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (done())
            return true;
        step();
    }
    return done();
}

} // namespace beethoven
