#include "sim/simulator.h"

#include <iostream>

#include "base/log.h"
#include "trace/stall.h"
#include "trace/trace.h"

namespace beethoven
{

Module::Module(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{
    sim.registerModule(this);
}

void
Simulator::step()
{
    for (Module *m : _modules)
        m->tick();
    for (Committable *c : _commits)
        c->commit();
    ++_cycle;
    if (_trace != nullptr && !_stallAccounts.empty() &&
        _cycle % kStallEmitPeriod == 0) {
        for (StallAccount *a : _stallAccounts)
            a->emitCounters(*_trace, _cycle);
    }
    if (!_invariants.empty() && _cycle % kInvariantPeriod == 0)
        checkInvariants();
    if (_watchdogLimit != 0 && _cycle - _lastProgress > _watchdogLimit) {
        dumpHangDiagnostics(std::cerr);
        fatal("simulation hang: no module made forward progress for "
              "%llu cycles (at cycle %llu)",
              static_cast<unsigned long long>(_cycle - _lastProgress),
              static_cast<unsigned long long>(_cycle));
    }
}

void
Simulator::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (done())
            return true;
        step();
    }
    return done();
}

void
Simulator::publishStallStats()
{
    _stats.scalar("cycles").set(static_cast<double>(_cycle));
    for (StallAccount *a : _stallAccounts)
        a->publish(_stats.group(a->name()), _cycle);
}

void
Simulator::dumpHangDiagnostics(std::ostream &os) const
{
    os << "=== hang diagnostics: cycle "
       << static_cast<unsigned long long>(_cycle) << ", last progress at "
       << static_cast<unsigned long long>(_lastProgress) << " ===\n";
    if (!_stallAccounts.empty())
        os << "per-module stall state:\n";
    for (const StallAccount *a : _stallAccounts)
        a->dumpState(os, _cycle);
    for (const auto &fn : _hangDumpers)
        fn(os);
    os.flush();
}

} // namespace beethoven
