/**
 * @file
 * ParallelRuntime — the multi-threaded sharded kernel (DESIGN.md §4a).
 *
 * The module graph is partitioned into *execution groups* along the
 * host/SLR/memory shard assignment registered in SimGraphRecord:
 * modules with the same shard share a group, and any queue edge with
 * latency < 2 merges its endpoints' groups (sub-2-cycle visibility
 * cannot be epoch-buffered). Each group runs the PR 8 event kernel —
 * unchanged — against its own ShardContext on a worker thread.
 *
 * Groups synchronize at epoch barriers. An epoch's length is capped by
 *   - the epoch quantum: the minimum latency over cross-group queues
 *     (a push cannot become visible to its consumer mid-epoch);
 *   - the minimum free space over cross-group queues at the last
 *     barrier (producers push at most once per cycle, so a producer's
 *     occupancy mirror stays exact and canPush() never lies);
 *   - the distance to the next invariant-check boundary and the
 *     remaining cycle budget.
 * Cross-group queues run in split mode (TimedQueue::drainSplit): the
 * producer parks pushes in a per-edge mailbox, the consumer pops
 * delivered entries, and the coordinator exchanges both at barriers in
 * queue-registration order — a fixed, thread-count-independent order,
 * which together with the exact-visibility argument above keeps
 * digests bit-identical to the tick and event kernels.
 *
 * While any registered serial fence holds (e.g. host DMA writing the
 * functional memory the DRAM model reads), the coordinator instead
 * steps merged single cycles in global module order, preserving the
 * serial kernels' tick order exactly.
 */

#ifndef BEETHOVEN_SIM_PARALLEL_H
#define BEETHOVEN_SIM_PARALLEL_H

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/types.h"
#include "sim/simulator.h"

namespace beethoven
{

class ParallelRuntime
{
  public:
    /**
     * Partition the graph, gate shard readiness (every module stamped,
     * every cross-group shared state resolved, every cross-group queue
     * split-capable with known endpoints), switch cross-group queues
     * to split mode, migrate armed wakes to their groups' wheels, and
     * start the worker threads. Throws ConfigError on any gate
     * violation.
     */
    explicit ParallelRuntime(Simulator &sim);
    ~ParallelRuntime();

    ParallelRuntime(const ParallelRuntime &) = delete;
    ParallelRuntime &operator=(const ParallelRuntime &) = delete;

    /** Advance the SoC exactly @p n cycles. */
    void runCycles(Cycle n);

    /**
     * Arm a wake from the main thread between runs (workers parked):
     * routed to the owning group's wheel.
     */
    void armWakeOutside(Module *m, Cycle at);

    // ---- introspection (tests, telemetry; barrier-time views) ----
    std::size_t groupCount() const { return _groups.size(); }
    unsigned workerCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }
    /** Minimum cross-group queue latency; 0 when no cross edges. */
    Cycle epochQuantum() const { return _quantum; }
    std::size_t splitQueueCount() const { return _splits.size(); }
    int groupOfModule(const Module *m) const;
    std::size_t pendingGroupWakes() const;
    /** Length of the most recently executed (non-merged) epoch. */
    Cycle lastEpochLength() const { return _lastEpoch; }
    /** Cycles stepped in serial-fence merged mode so far. */
    u64 mergedCycleCount() const { return _mergedCycles; }

  private:
    struct Split
    {
        Committable *object = nullptr;
        Module *producer = nullptr;
        Module *consumer = nullptr;
        unsigned latency = 0;
    };

    class DrainHost;

    void buildGroups();
    void gateAttachments() const;
    void gateSharedState() const;
    void splitCrossEdges();
    void migrateWakes();
    void startWorkers();

    void workerMain(unsigned wi);
    void runEpochOn(ShardContext &ctx, Cycle start, Cycle len);
    void mergedCycle();
    void drainSplits(Cycle barrier);
    void barrierBookkeeping(Cycle new_cycle, Cycle epoch_len);
    bool fenceActive() const;
    ShardContext &ctxOf(const Module *m);

    Simulator &_sim;
    std::vector<std::unique_ptr<ShardContext>> _groups;
    /** Module index -> group index. */
    std::vector<int> _groupOf;
    /** Cross-group split queues, in queue-registration order. */
    std::vector<Split> _splits;
    Cycle _quantum = 0;
    /** Min free space over split queues as of the last barrier. */
    std::size_t _minSlack = 0;
    Cycle _lastEpoch = 0;
    u64 _mergedCycles = 0;

    /** Groups each worker runs, round-robin by group index. */
    std::vector<std::vector<ShardContext *>> _assignment;
    std::vector<std::thread> _workers;

    // Epoch barrier: the coordinator publishes (_epochStart, _epochLen)
    // and bumps _generation (release); workers run their groups and
    // count into _arrived (release). std::atomic wait/notify parks
    // both sides on the futex path; a bounded spin first when the
    // machine has cores to spare.
    std::atomic<u64> _generation{0};
    std::atomic<unsigned> _arrived{0};
    Cycle _epochStart = 0;
    Cycle _epochLen = 0;
    bool _exit = false;
    unsigned _spin = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_SIM_PARALLEL_H
