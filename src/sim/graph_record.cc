#include "sim/graph_record.h"

#include <cstring>

namespace beethoven
{

namespace
{

/// Countdown for the planted missing-push-wake; 0 means disarmed.
u64 g_plantMissingPushWake = 0;

} // namespace

void
plantMissingPushWake(u64 nth)
{
    g_plantMissingPushWake = nth;
}

bool
consumePlantMissingPushWake()
{
    if (g_plantMissingPushWake == 0)
        return false;
    return --g_plantMissingPushWake == 0;
}

std::string
trimSourcePath(const char *path)
{
    if (path == nullptr)
        return "<unknown>";
    static const char *const roots[] = {"/src/", "/tools/", "/tests/",
                                        "/bench/", "/examples/"};
    const char *best = nullptr;
    for (const char *root : roots) {
        // Last occurrence wins so build trees nested under src/ still
        // trim to the repo-relative suffix.
        for (const char *p = std::strstr(path, root); p != nullptr;
             p = std::strstr(p + 1, root)) {
            if (best == nullptr || p > best)
                best = p;
        }
    }
    if (best != nullptr)
        return std::string(best + 1);
    const char *slash = std::strrchr(path, '/');
    return std::string(slash != nullptr ? slash + 1 : path);
}

std::string
formatSourceSite(const std::source_location &loc)
{
    return trimSourcePath(loc.file_name()) + ":" +
           std::to_string(loc.line());
}

std::string
SourceSite::str() const
{
    if (file == nullptr)
        return "";
    return trimSourcePath(file) + ":" + std::to_string(line);
}

SimGraphRecord::SimGraphRecord()
{
    // Kernel-owned mutable state that every shard touches by
    // construction: the wake wheel (any module may wake any other) and
    // the process-global KPI tick counters. Registered up front so the
    // shard-readiness audit can never report a sharded kernel as free
    // of shared state.
    SharedState wheel;
    wheel.name = "sim.wake-wheel";
    wheel.kind = "sim";
    wheel.site = std::source_location::current();
    wheel.spansAllShards = true;
    wheel.resolution =
        "the parallel kernel replaces the global wheel with one wake "
        "wheel per execution group; cross-group wakes are armed by the "
        "coordinator at epoch barriers";
    _shared.push_back(std::move(wheel));

    SharedState kpi;
    kpi.name = "sim.kpi-counters";
    kpi.kind = "sim";
    kpi.site = std::source_location::current();
    kpi.spansAllShards = true;
    kpi.resolution =
        "groups count ticks into their ShardContext; the coordinator "
        "folds them into the process-global KPI counters at epoch "
        "barriers";
    _shared.push_back(std::move(kpi));
}

SimGraphRecord::ModuleInfo &
SimGraphRecord::infoFor(Module *m)
{
    auto it = _moduleIndex.find(m);
    if (it != _moduleIndex.end())
        return _modules[it->second];
    _moduleIndex.emplace(m, _modules.size());
    ModuleInfo info;
    info.module = m;
    _modules.push_back(std::move(info));
    return _modules.back();
}

SimGraphRecord::QueueEdge &
SimGraphRecord::edgeFor(const void *q)
{
    auto it = _edgeIndex.find(q);
    if (it != _edgeIndex.end())
        return _edges[it->second];
    _edgeIndex.emplace(q, _edges.size());
    QueueEdge e;
    e.queue = q;
    _edges.push_back(std::move(e));
    return _edges.back();
}

void
SimGraphRecord::noteModule(Module *m)
{
    ModuleInfo &info = infoFor(m);
    // A reused address means a transient test module died and a new one
    // took its slot; start its record from scratch.
    info = ModuleInfo{};
    info.module = m;
}

void
SimGraphRecord::setRole(Module *m, const char *role)
{
    infoFor(m).role = role;
}

void
SimGraphRecord::setSleepable(Module *m, SourceSite site)
{
    ModuleInfo &info = infoFor(m);
    info.sleepable = true;
    info.sleepSite = site;
}

void
SimGraphRecord::setSelfWake(Module *m, SourceSite site)
{
    ModuleInfo &info = infoFor(m);
    info.selfWake = true;
    info.selfWakeSite = site;
}

void
SimGraphRecord::setShard(Module *m, int shard)
{
    infoFor(m).shard = shard;
}

void
SimGraphRecord::registerQueue(Committable *q, std::size_t capacity,
                              unsigned latency, SourceSite site)
{
    QueueEdge &e = edgeFor(q);
    e = QueueEdge{};
    e.queue = q;
    e.object = q;
    e.capacity = capacity;
    e.latency = latency;
    e.site = site;
}

void
SimGraphRecord::recordPushWake(const void *q, Module *consumer, bool armed,
                               SourceSite site)
{
    QueueEdge &e = edgeFor(q);
    if (e.consumer == nullptr) {
        e.consumer = consumer;
        e.consumerSite = site;
    }
    e.pushWakeArmed = armed;
    e.pushWakeTarget = armed ? consumer : nullptr;
}

void
SimGraphRecord::recordPopWake(const void *q, Module *producer, bool armed,
                              SourceSite site)
{
    QueueEdge &e = edgeFor(q);
    if (e.producer == nullptr) {
        e.producer = producer;
        e.producerSite = site;
    }
    e.popWakeArmed = armed;
}

void
SimGraphRecord::declareConsumer(const void *q, Module *consumer,
                                SourceSite site)
{
    QueueEdge &e = edgeFor(q);
    e.consumer = consumer;
    e.consumerSite = site;
}

void
SimGraphRecord::declareProducer(const void *q, Module *producer,
                                SourceSite site)
{
    QueueEdge &e = edgeFor(q);
    e.producer = producer;
    e.producerSite = site;
}

void
SimGraphRecord::defineShard(int id, std::string name)
{
    _shards.push_back(Shard{id, std::move(name)});
}

void
SimGraphRecord::addSharedState(SharedState state)
{
    _shared.push_back(std::move(state));
}

void
SimGraphRecord::resolveSharedState(const std::string &name,
                                   std::string how)
{
    for (SharedState &st : _shared) {
        if (st.name == name) {
            st.resolution = std::move(how);
            return;
        }
    }
}

} // namespace beethoven
