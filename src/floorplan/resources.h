/**
 * @file
 * FPGA/ASIC resource accounting vectors.
 *
 * Tracked kinds mirror the columns of the paper's Table II: CLBs,
 * CLB LUTs, CLB registers, BRAM36 blocks, and URAM blocks. The ASIC
 * backend reuses the same vector with `sramMacros` standing in for the
 * memory blocks and an area figure in square micrometres.
 */

#ifndef BEETHOVEN_FLOORPLAN_RESOURCES_H
#define BEETHOVEN_FLOORPLAN_RESOURCES_H

#include <ostream>

namespace beethoven
{

struct ResourceVec
{
    double clb = 0;
    double lut = 0;
    double ff = 0;
    double bram = 0; ///< BRAM36 blocks (half-blocks appear as .5)
    double uram = 0;
    double sramMacros = 0; ///< ASIC backend only
    double areaUm2 = 0;    ///< ASIC backend only

    ResourceVec &
    operator+=(const ResourceVec &o)
    {
        clb += o.clb;
        lut += o.lut;
        ff += o.ff;
        bram += o.bram;
        uram += o.uram;
        sramMacros += o.sramMacros;
        areaUm2 += o.areaUm2;
        return *this;
    }

    friend ResourceVec
    operator+(ResourceVec a, const ResourceVec &b)
    {
        a += b;
        return a;
    }

    friend ResourceVec
    operator*(ResourceVec a, double k)
    {
        a.clb *= k;
        a.lut *= k;
        a.ff *= k;
        a.bram *= k;
        a.uram *= k;
        a.sramMacros *= k;
        a.areaUm2 *= k;
        return a;
    }

    /** True when every component of this fits within @p budget. */
    bool
    fitsWithin(const ResourceVec &budget) const
    {
        return clb <= budget.clb && lut <= budget.lut &&
               ff <= budget.ff && bram <= budget.bram &&
               uram <= budget.uram;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const ResourceVec &r)
{
    os << "{clb=" << r.clb << " lut=" << r.lut << " ff=" << r.ff
       << " bram=" << r.bram << " uram=" << r.uram << "}";
    return os;
}

} // namespace beethoven

#endif // BEETHOVEN_FLOORPLAN_RESOURCES_H
