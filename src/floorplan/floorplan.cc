#include "floorplan/floorplan.h"

#include <algorithm>

#include "base/log.h"

namespace beethoven
{

Floorplanner::Floorplanner(std::vector<SlrDescriptor> slrs,
                           double memory_derate)
    : _slrs(std::move(slrs)),
      _memoryDerate(memory_derate),
      _used(_slrs.size())
{
    beethoven_assert(!_slrs.empty(), "floorplanner with no SLRs");
}

namespace
{

/** Fractional utilization of the dominant resource class. */
double
dominantUtilization(const ResourceVec &used, const ResourceVec &avail)
{
    double worst = 0.0;
    auto consider = [&](double u, double cap) {
        if (cap > 0)
            worst = std::max(worst, u / cap);
        else if (u > 0)
            worst = 2.0; // demanded a resource this die lacks entirely
    };
    consider(used.clb, avail.clb);
    consider(used.lut, avail.lut);
    consider(used.ff, avail.ff);
    consider(used.bram, avail.bram);
    consider(used.uram, avail.uram);
    return worst;
}

} // namespace

unsigned
Floorplanner::placeCore(const std::string &name, const ResourceVec &est)
{
    // Affinity-aware greedy placement: choose the SLR whose dominant
    // utilization after placing the core is lowest. Because the shell
    // pre-charges SLR0/1, cores naturally gravitate to emptier dies.
    int best = -1;
    double best_util = 0.0;
    for (unsigned s = 0; s < _slrs.size(); ++s) {
        const ResourceVec avail = _slrs[s].available();
        const ResourceVec after = _used[s] + est;
        if (!after.fitsWithin(avail))
            continue;
        const double util = dominantUtilization(after, avail);
        if (best < 0 || util < best_util) {
            best = static_cast<int>(s);
            best_util = util;
        }
    }
    if (best < 0) {
        fatal("core %s (%0.0f LUT, %0.1f BRAM) does not fit on any SLR",
              name.c_str(), est.lut, est.bram);
    }
    _used[best] += est;
    _cores.push_back({name, static_cast<unsigned>(best), est});
    return static_cast<unsigned>(best);
}

void
Floorplanner::charge(unsigned slr, const ResourceVec &r)
{
    beethoven_assert(slr < _slrs.size(), "SLR %u out of range", slr);
    _used[slr] += r;
}

double
Floorplanner::utilizationAfter(unsigned slr, const ResourceVec &extra,
                               MemoryCellKind kind) const
{
    const ResourceVec avail = _slrs[slr].available();
    const ResourceVec after = _used[slr] + extra;
    // The spill rule sees congestion-derated availability.
    const double d = _memoryDerate;
    switch (kind) {
      case MemoryCellKind::Bram:
        return avail.bram > 0 ? after.bram / (avail.bram * d) : 2.0;
      case MemoryCellKind::Uram:
        return avail.uram > 0 ? after.uram / (avail.uram * d) : 2.0;
      case MemoryCellKind::AsicSram:
        return avail.sramMacros > 0
                   ? after.sramMacros / (avail.sramMacros * d)
                   : 2.0;
    }
    return 2.0;
}

CompiledMemory
Floorplanner::mapMemory(unsigned slr, const MemoryCellLibrary &lib,
                        MemoryCellKind preferred, unsigned width_bits,
                        unsigned depth, unsigned n_read_ports)
{
    beethoven_assert(slr < _slrs.size(), "SLR %u out of range", slr);

    if (preferred == MemoryCellKind::AsicSram) {
        CompiledMemory m = compileMemory(lib, preferred, width_bits,
                                         depth, n_read_ports);
        charge(slr, m.resources);
        return m;
    }

    const MemoryCellKind alternate = preferred == MemoryCellKind::Bram
                                         ? MemoryCellKind::Uram
                                         : MemoryCellKind::Bram;
    const CompiledMemory first =
        compileMemory(lib, preferred, width_bits, depth, n_read_ports);
    const double first_util =
        utilizationAfter(slr, first.resources, preferred);
    if (first_util <= spillThreshold) {
        charge(slr, first.resources);
        return first;
    }

    // Section II-B: "mapping to other cell types when utilizing more
    // than 80% of the available resources on a given SLR".
    const CompiledMemory second =
        compileMemory(lib, alternate, width_bits, depth, n_read_ports);
    const double second_util =
        utilizationAfter(slr, second.resources, alternate);
    const CompiledMemory &pick =
        second_util <= first_util ? second : first;
    charge(slr, pick.resources);
    return pick;
}

double
Floorplanner::bramUtilization(unsigned slr) const
{
    const double cap = _slrs[slr].available().bram;
    return cap > 0 ? _used[slr].bram / cap : 0.0;
}

double
Floorplanner::uramUtilization(unsigned slr) const
{
    const double cap = _slrs[slr].available().uram;
    return cap > 0 ? _used[slr].uram / cap : 0.0;
}

double
Floorplanner::lutUtilization(unsigned slr) const
{
    const double cap = _slrs[slr].available().lut;
    return cap > 0 ? _used[slr].lut / cap : 0.0;
}

double
Floorplanner::clbUtilization(unsigned slr) const
{
    const double cap = _slrs[slr].available().clb;
    return cap > 0 ? _used[slr].clb / cap : 0.0;
}

const ResourceVec &
Floorplanner::used(unsigned slr) const
{
    beethoven_assert(slr < _used.size(), "SLR %u out of range", slr);
    return _used[slr];
}

const SlrDescriptor &
Floorplanner::slr(unsigned idx) const
{
    beethoven_assert(idx < _slrs.size(), "SLR %u out of range", idx);
    return _slrs[idx];
}

ResourceVec
Floorplanner::totalUsed() const
{
    ResourceVec total;
    for (const auto &u : _used)
        total += u;
    return total;
}

ResourceVec
Floorplanner::totalCapacity() const
{
    ResourceVec total;
    for (const auto &s : _slrs)
        total += s.capacity;
    return total;
}

ResourceVec
Floorplanner::totalShell() const
{
    ResourceVec total;
    for (const auto &s : _slrs)
        total += s.shellFootprint;
    return total;
}

void
Floorplanner::emitConstraints(std::ostream &os) const
{
    os << "# Beethoven-generated placement constraints\n";
    for (unsigned s = 0; s < _slrs.size(); ++s) {
        os << "create_pblock pblock_" << _slrs[s].name << "\n";
        os << "resize_pblock pblock_" << _slrs[s].name
           << " -add {SLR" << s << "}\n";
    }
    for (const auto &core : _cores) {
        os << "add_cells_to_pblock pblock_" << _slrs[core.slr].name
           << " [get_cells " << core.name << "]\n";
    }
}

} // namespace beethoven
