/**
 * @file
 * SLR-aware floorplanning (Section II-B, "Multi-Die Designs").
 *
 * "Beethoven first places accelerator cores across SLRs. Then,
 * Beethoven generates on-chip networks ... that use this placement
 * information ... Beethoven produces constraint files that enforce the
 * placement of all components onto the intended SLRs."
 *
 * The Floorplanner keeps a per-SLR resource ledger (shell footprint
 * pre-charged), places cores onto the least-utilized die, applies the
 * 80 %-utilization BRAM->URAM spill rule during scratchpad mapping
 * (Section II-B, "Scratchpads and On-Chip Memory"), and emits a
 * Vivado-style placement constraint file.
 */

#ifndef BEETHOVEN_FLOORPLAN_FLOORPLAN_H
#define BEETHOVEN_FLOORPLAN_FLOORPLAN_H

#include <ostream>
#include <string>
#include <vector>

#include "floorplan/resources.h"
#include "mem/memory_compiler.h"
#include "platform/platform.h"

namespace beethoven
{

class Floorplanner
{
  public:
    /**
     * @param memory_derate  fraction of memory blocks treated as
     *        available by the spill rule (congestion derating)
     */
    explicit Floorplanner(std::vector<SlrDescriptor> slrs,
                          double memory_derate = 1.0);

    std::size_t numSlrs() const { return _slrs.size(); }

    /**
     * Place a named core with the given resource estimate on the SLR
     * with the most remaining headroom.
     * @return the chosen SLR index
     * @throws ConfigError when no SLR can accommodate the core
     */
    unsigned placeCore(const std::string &name, const ResourceVec &est);

    /** Charge additional resources (e.g. interconnect) to an SLR. */
    void charge(unsigned slr, const ResourceVec &r);

    /**
     * Map an on-chip memory request onto a cell family for @p slr,
     * applying the 80 % spill rule: prefer the platform's first-choice
     * family, but spill to the alternative when the first choice would
     * exceed 80 % utilization of that SLR's blocks. The chosen
     * mapping's resources are charged to the ledger.
     */
    CompiledMemory mapMemory(unsigned slr, const MemoryCellLibrary &lib,
                             MemoryCellKind preferred,
                             unsigned width_bits, unsigned depth,
                             unsigned n_read_ports = 1);

    /** Fraction of a resource class used on an SLR (0..1+). */
    double bramUtilization(unsigned slr) const;
    double uramUtilization(unsigned slr) const;
    double lutUtilization(unsigned slr) const;
    double clbUtilization(unsigned slr) const;

    const ResourceVec &used(unsigned slr) const;
    const SlrDescriptor &slr(unsigned idx) const;

    ResourceVec totalUsed() const;
    ResourceVec totalCapacity() const;
    ResourceVec totalShell() const;

    /** Names and SLR assignments of placed cores, in placement order. */
    struct PlacedCore
    {
        std::string name;
        unsigned slr;
        ResourceVec resources;
    };
    const std::vector<PlacedCore> &placedCores() const { return _cores; }

    /** Emit a Vivado-style pblock constraint file for the placement. */
    void emitConstraints(std::ostream &os) const;

    /** Spill threshold of the scratchpad mapping rule. */
    static constexpr double spillThreshold = 0.8;

  private:
    double utilizationAfter(unsigned slr, const ResourceVec &extra,
                            MemoryCellKind kind) const;

    std::vector<SlrDescriptor> _slrs;
    double _memoryDerate;
    std::vector<ResourceVec> _used; ///< excludes shell footprint
    std::vector<PlacedCore> _cores;
};

} // namespace beethoven

#endif // BEETHOVEN_FLOORPLAN_FLOORPLAN_H
